//! The TCP accept loop: `std::net`, one thread per connection, one
//! shared [`SpaApi`] behind them all.
//!
//! Connections speak the [`wire`](crate::wire) protocol: read one
//! framed, enveloped request, dispatch it, write one framed response,
//! repeat until the peer closes. Corruption handling mirrors the
//! write-ahead log's:
//!
//! * a frame with a CRC mismatch gets a loud [`ApiResponse::Error`]
//!   answer and the connection is closed (after a failed checksum the
//!   stream's framing cannot be trusted);
//! * a torn frame (peer died mid-request) is dropped whole — never
//!   half-dispatched — and the connection closed.
//!
//! On top of that sits the robustness contract ([`ServeOptions`]):
//!
//! * **admission control** — a connection cap refused at accept time
//!   and a bounded in-flight limit shed with a fast-fail
//!   [`ERR_SERVER_BUSY`] answer (the envelope is still decoded, so the
//!   rejection carries the request id the client is waiting on);
//! * **timeouts** — per-connection socket read/write timeouts; peers
//!   idle past [`ServeOptions::idle_timeout`] are reaped
//!   (`idle_reaped`), peers stalling **mid-frame** are cut immediately
//!   as slow-loris suspects (`slow_reaped`);
//! * **graceful drain** — [`ServerHandle::drain`] stops accepting,
//!   answers new frames [`ERR_DRAINING`], lets in-flight requests
//!   finish, checkpoints the platform and only then returns;
//! * **hard kill** — [`ServerHandle::hard_kill`] severs every
//!   connection with no goodbye and no checkpoint, modelling `SIGKILL`
//!   for the process-kill chaos soak.
//!
//! Everything is counted in [`ServerStats`], so a harness can assert
//! that every corruption, shed, reap and dedup replay it provoked was
//! seen and accounted.

use crate::netfault::{CallFault, NetFaultPlan};
use crate::wire::{self, FrameEvent};
use bytes::BytesMut;
use spa_core::{ApiRequest, ApiResponse, Dispatched, SpaApi, ERR_DRAINING, ERR_SERVER_BUSY};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monotonic counters of what the server has seen, shared across all
/// connection threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections refused at accept time (connection cap).
    pub connections_refused: AtomicU64,
    /// Requests dispatched and answered (including `Error` answers to
    /// well-framed but malformed requests).
    pub frames_served: AtomicU64,
    /// Frames rejected for corruption: CRC mismatch, oversized length,
    /// or a torn request.
    pub corrupt_frames: AtomicU64,
    /// Requests fast-failed with [`ERR_SERVER_BUSY`] because the
    /// in-flight limit was reached (never dispatched).
    pub sheds: AtomicU64,
    /// Connections reaped for sitting idle past the idle timeout
    /// without sending a byte.
    pub idle_reaped: AtomicU64,
    /// Connections cut for stalling mid-frame (slow-loris defense).
    pub slow_reaped: AtomicU64,
    /// Requests refused with [`ERR_DEADLINE_EXCEEDED`]
    /// (arrived past their envelope deadline; never executed).
    ///
    /// [`ERR_DEADLINE_EXCEEDED`]: spa_core::ERR_DEADLINE_EXCEEDED
    pub deadline_rejects: AtomicU64,
    /// Requests answered byte-identically from the dedup window
    /// instead of re-executing (idempotent retries).
    pub dedup_hits: AtomicU64,
    /// Frames refused with [`ERR_DRAINING`] after a drain began.
    pub drain_rejects: AtomicU64,
    /// Response paths severed by the server-side [`NetFaultPlan`].
    pub injected_disconnects: AtomicU64,
}

/// A plain-value snapshot of [`ServerStats`], for accumulating across
/// server incarnations in a chaos harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field-for-field mirror of ServerStats
pub struct ServerCounts {
    pub connections: u64,
    pub connections_refused: u64,
    pub frames_served: u64,
    pub corrupt_frames: u64,
    pub sheds: u64,
    pub idle_reaped: u64,
    pub slow_reaped: u64,
    pub deadline_rejects: u64,
    pub dedup_hits: u64,
    pub drain_rejects: u64,
    pub injected_disconnects: u64,
}

impl ServerCounts {
    /// Field-wise accumulation (counters die with an incarnation).
    pub fn accumulate(&mut self, other: ServerCounts) {
        self.connections += other.connections;
        self.connections_refused += other.connections_refused;
        self.frames_served += other.frames_served;
        self.corrupt_frames += other.corrupt_frames;
        self.sheds += other.sheds;
        self.idle_reaped += other.idle_reaped;
        self.slow_reaped += other.slow_reaped;
        self.deadline_rejects += other.deadline_rejects;
        self.dedup_hits += other.dedup_hits;
        self.drain_rejects += other.drain_rejects;
        self.injected_disconnects += other.injected_disconnects;
    }
}

impl ServerStats {
    /// Snapshot of every counter.
    pub fn counts(&self) -> ServerCounts {
        ServerCounts {
            connections: self.connections.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            frames_served: self.frames_served.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            slow_reaped: self.slow_reaped.load(Ordering::Relaxed),
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            drain_rejects: self.drain_rejects.load(Ordering::Relaxed),
            injected_disconnects: self.injected_disconnects.load(Ordering::Relaxed),
        }
    }
}

/// Admission, timeout and fault-injection knobs for one server.
#[derive(Clone)]
pub struct ServeOptions {
    /// Most connections served at once; further accepts are answered
    /// with one [`ERR_SERVER_BUSY`] frame and closed. `0` = unlimited.
    pub max_connections: usize,
    /// Most requests dispatching at once across all connections;
    /// requests beyond it are shed fast with [`ERR_SERVER_BUSY`]
    /// instead of queueing. `0` = unlimited.
    pub max_in_flight: usize,
    /// Socket read timeout. Bounds how long a peer may stall
    /// **mid-frame** before being cut (slow-loris defense), and sets
    /// the granularity at which idle peers are checked. `None`
    /// disables both (a silent peer then pins its thread forever).
    pub read_timeout: Option<Duration>,
    /// Socket write timeout (a peer that stops draining its receive
    /// window cannot pin a response write forever).
    pub write_timeout: Option<Duration>,
    /// Connections idle (on a frame boundary) past this are reaped.
    /// Requires `read_timeout` to be set; checked at its granularity.
    pub idle_timeout: Option<Duration>,
    /// Server-side response-path fault injection (chaos only).
    pub fault: Option<Arc<NetFaultPlan>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_connections: 256,
            max_in_flight: 64,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            idle_timeout: Some(Duration::from_secs(60)),
            fault: None,
        }
    }
}

/// What a graceful drain accomplished.
#[derive(Debug)]
pub struct DrainReport {
    /// Connections still live when the drain began.
    pub connections_at_drain: usize,
    /// Whether every connection finished within the drain's bounded
    /// wait (a `false` means a peer was still attached when the
    /// checkpoint was cut — its in-flight request had already
    /// dispatched or been refused).
    pub quiesced: bool,
    /// The checkpoint answer (an `Error` response on platforms
    /// without a write-ahead log, where there is nothing to cut).
    pub checkpoint: ApiResponse,
}

/// State shared by the accept loop, every connection thread and the
/// handle.
struct Shared {
    api: Arc<SpaApi>,
    stats: Arc<ServerStats>,
    options: ServeOptions,
    in_flight: AtomicUsize,
    live_connections: AtomicUsize,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// `try_clone`d handles of every live connection, so drain can
    /// nudge idle peers and hard-kill can sever everyone.
    registry: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A running server: its bound address, its counters, and its
/// lifecycle controls. Dropping the handle stops the accept loop;
/// already-accepted connections drain at their own pace.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (use port 0 to let the
    /// OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// A clone of the counter handle that outlives the server — a
    /// chaos harness snapshots final counts *after* a hard kill.
    pub fn stats_handle(&self) -> Arc<ServerStats> {
        self.shared.stats.clone()
    }

    /// The facade this server dispatches into.
    pub fn api(&self) -> &Arc<SpaApi> {
        &self.shared.api
    }

    /// Connections currently attached.
    pub fn live_connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and joins the accept loop. Already
    /// accepted connections finish their current request and drain
    /// naturally when their peers close.
    pub fn shutdown(mut self) {
        self.stop_accept();
    }

    /// Begins a graceful drain: stops accepting, and every frame
    /// arriving from here on is refused with a loud [`ERR_DRAINING`]
    /// answer instead of dispatched. In-flight requests finish.
    pub fn begin_drain(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.stop_accept();
    }

    /// Completes a drain begun with [`ServerHandle::begin_drain`]:
    /// nudges idle connections closed, waits (bounded) for every
    /// connection thread to finish, then checkpoints the platform so
    /// the next process starts from a snapshot instead of a long tail
    /// replay.
    pub fn finish_drain(&mut self) -> DrainReport {
        let connections_at_drain = self.live_connections();
        // close the read half of every live connection: idle peers see
        // a clean close; a response still being written goes out whole
        for stream in self.shared.registry.lock().expect("registry lock").values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let quiesced = self.await_quiescence(Duration::from_secs(10));
        let checkpoint = self.shared.api.dispatch(&ApiRequest::Checkpoint);
        DrainReport { connections_at_drain, quiesced, checkpoint }
    }

    /// The full graceful exit: finish in-flight requests, refuse new
    /// frames loudly, checkpoint, and only then return.
    pub fn drain(mut self) -> DrainReport {
        self.begin_drain();
        self.finish_drain()
    }

    /// Kills the server the way `SIGKILL` would: stops accepting and
    /// severs every connection immediately — no goodbye frame, no
    /// checkpoint, responses torn mid-write if they were in flight.
    /// Waits (bounded) for connection threads to observe the severed
    /// sockets and exit, so the caller may safely recover the
    /// platform's WAL afterwards.
    pub fn hard_kill(mut self) {
        self.stop_accept();
        for stream in self.shared.registry.lock().expect("registry lock").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.await_quiescence(Duration::from_secs(10));
    }

    fn await_quiescence(&self, limit: Duration) -> bool {
        let start = Instant::now();
        while self.live_connections() > 0 {
            if start.elapsed() > limit {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    fn stop_accept(&mut self) {
        let Some(thread) = self.accept_thread.take() else { return };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_accept();
    }
}

/// Binds `addr` and serves `api` with default [`ServeOptions`] until
/// the returned handle is shut down or dropped.
pub fn serve<A: ToSocketAddrs>(api: Arc<SpaApi>, addr: A) -> io::Result<ServerHandle> {
    serve_with(api, addr, ServeOptions::default())
}

/// [`serve`] with explicit admission/timeout/fault options.
pub fn serve_with<A: ToSocketAddrs>(
    api: Arc<SpaApi>,
    addr: A,
    options: ServeOptions,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        api,
        stats: Arc::new(ServerStats::default()),
        options,
        in_flight: AtomicUsize::new(0),
        live_connections: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        registry: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
    });
    let accept_thread = {
        let shared = shared.clone();
        std::thread::Builder::new().name("spa-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst)
                {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let cap = shared.options.max_connections;
                if cap != 0 && shared.live_connections.load(Ordering::SeqCst) >= cap {
                    // refuse fast with one loud busy frame — cheaper
                    // than a thread, and the client learns why
                    shared.stats.connections_refused.fetch_add(1, Ordering::Relaxed);
                    let mut scratch = BytesMut::new();
                    wire::encode_enveloped_response(
                        0,
                        false,
                        &ApiResponse::Error {
                            message: format!("{ERR_SERVER_BUSY}: connection cap {cap} reached"),
                        },
                        &mut scratch,
                    );
                    let _ = wire::send_frame(&mut stream, &scratch);
                    continue;
                }
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                shared.live_connections.fetch_add(1, Ordering::SeqCst);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.registry.lock().expect("registry lock").insert(conn_id, clone);
                }
                let conn_shared = shared.clone();
                let spawned = std::thread::Builder::new()
                    .name("spa-conn".into())
                    .spawn(move || handle_connection(&conn_shared, stream, conn_id));
                if spawned.is_err() {
                    shared.registry.lock().expect("registry lock").remove(&conn_id);
                    shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?
    };
    Ok(ServerHandle { addr, shared, accept_thread: Some(accept_thread) })
}

/// One connection's request/response loop.
fn handle_connection(shared: &Shared, mut stream: TcpStream, conn_id: u64) {
    // request/response turnaround must not sit in Nagle's buffer
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.options.read_timeout);
    let _ = stream.set_write_timeout(shared.options.write_timeout);
    let mut scratch = BytesMut::new();
    let mut last_frame = Instant::now();
    loop {
        match wire::recv_frame_event(&mut stream) {
            Ok(FrameEvent::Frame(payload)) => {
                last_frame = Instant::now();
                if !serve_frame(shared, &mut stream, &mut scratch, &payload) {
                    break;
                }
            }
            Ok(FrameEvent::CleanClose) => break,
            Ok(FrameEvent::IdleBoundary) => {
                // the stream is still frame-aligned; reap only peers
                // idle past the budget (or once the server is going away)
                if shared.shutdown.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst)
                {
                    break;
                }
                if let Some(idle) = shared.options.idle_timeout {
                    if last_frame.elapsed() >= idle {
                        shared.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            Ok(FrameEvent::Stalled) => {
                // a peer feeding a frame by the byte is a slow-loris
                // suspect: cut it now, the stream cannot be re-aligned
                shared.stats.slow_reaped.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(error) if error.kind() == io::ErrorKind::InvalidData => {
                // flipped bits are answered loudly, then the stream is
                // abandoned — its framing can no longer be trusted
                shared.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                let reply = ApiResponse::Error { message: format!("rejected frame: {error}") };
                let _ = send_reply(shared, &mut stream, &mut scratch, 0, false, &reply);
                break;
            }
            Err(_) => {
                // torn frame or transport failure: nothing of the
                // request is dispatched
                shared.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    shared.registry.lock().expect("registry lock").remove(&conn_id);
    shared.live_connections.fetch_sub(1, Ordering::SeqCst);
}

/// Admits, dispatches and answers one well-framed request. Returns
/// whether the connection is still usable.
fn serve_frame(
    shared: &Shared,
    stream: &mut TcpStream,
    scratch: &mut BytesMut,
    payload: &[u8],
) -> bool {
    // the envelope split is cheap enough to run even while shedding,
    // so every rejection carries the request id the client waits on
    let (envelope, inner) = match wire::decode_request_envelope(payload) {
        Ok(parts) => parts,
        Err(error) => {
            // well-framed but malformed: answer loudly, the connection
            // stays usable (framing is still aligned)
            shared.stats.frames_served.fetch_add(1, Ordering::Relaxed);
            let reply = ApiResponse::Error { message: error.to_string() };
            return send_reply(shared, stream, scratch, 0, false, &reply);
        }
    };
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.drain_rejects.fetch_add(1, Ordering::Relaxed);
        let reply = ApiResponse::Error {
            message: format!("{ERR_DRAINING}: server is draining, retry elsewhere"),
        };
        let _ = send_reply(shared, stream, scratch, envelope.id, false, &reply);
        return false;
    }
    // fast-fail admission: never queue past the in-flight budget
    let limit = shared.options.max_in_flight;
    if limit != 0 && shared.in_flight.fetch_add(1, Ordering::SeqCst) >= limit {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
        let reply = ApiResponse::Error {
            message: format!("{ERR_SERVER_BUSY}: {limit} requests already in flight"),
        };
        return send_reply(shared, stream, scratch, envelope.id, false, &reply);
    }
    let dispatched = match wire::decode_request(inner) {
        Ok(request) => shared.api.dispatch_enveloped(&envelope, &request),
        Err(error) => Dispatched {
            response: ApiResponse::Error { message: error.to_string() },
            replayed: false,
            deadline_rejected: false,
        },
    };
    if limit != 0 {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
    shared.stats.frames_served.fetch_add(1, Ordering::Relaxed);
    if dispatched.replayed {
        shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
    }
    if dispatched.deadline_rejected {
        shared.stats.deadline_rejects.fetch_add(1, Ordering::Relaxed);
    }
    send_reply(shared, stream, scratch, envelope.id, dispatched.replayed, &dispatched.response)
}

/// Writes one enveloped response frame, routing it through the
/// server-side fault plan when one is armed. Returns whether the
/// connection is still usable.
fn send_reply(
    shared: &Shared,
    stream: &mut TcpStream,
    scratch: &mut BytesMut,
    id: u64,
    replayed: bool,
    response: &ApiResponse,
) -> bool {
    scratch.clear();
    wire::encode_enveloped_response(id, replayed, response, scratch);
    if let Some(plan) = &shared.options.fault {
        match plan.draw_call_fault() {
            Some(CallFault::DropTx) => {
                // tear the response frame at a drawn point, then sever:
                // the client sees a torn (never half-decoded) response
                let mut frame = Vec::with_capacity(scratch.len() + 8);
                wire::send_frame(&mut frame, scratch).expect("vec write");
                let keep = plan.draw_tear_point(frame.len());
                let _ = stream.write_all(&frame[..keep]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                shared.stats.injected_disconnects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Some(CallFault::DropRx) | Some(CallFault::Stall) => {
                // server-side, both collapse to "the response never
                // leaves": sever with nothing written
                let _ = stream.shutdown(Shutdown::Both);
                shared.stats.injected_disconnects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Some(CallFault::PartialWrite) => {
                // the frame lands in two writes — the byte stream must
                // absorb the split invisibly
                let mut frame = Vec::with_capacity(scratch.len() + 8);
                wire::send_frame(&mut frame, scratch).expect("vec write");
                let split = plan.draw_tear_point(frame.len()).max(1);
                let ok = stream.write_all(&frame[..split]).is_ok()
                    && stream.flush().is_ok()
                    && stream.write_all(&frame[split..]).is_ok()
                    && stream.flush().is_ok();
                return ok;
            }
            None => {}
        }
    }
    wire::send_frame(stream, scratch).is_ok()
}
