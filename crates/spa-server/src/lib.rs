//! Minimal TCP serving layer for the SPA platform.
//!
//! A deliberately small, dependency-free stack in three pieces:
//!
//! * [`wire`] — a compact binary protocol. Every message travels in the
//!   **same frame the write-ahead log uses on disk**
//!   (`len: u32 | crc: u32 | payload`, little-endian, CRC-32 over the
//!   payload), and `Ingest` payloads carry events in the WAL's own
//!   encoding — a bit flipped in flight is as loud as a bit flipped on
//!   a platter, and a torn request is rejected exactly like a torn log
//!   tail.
//! * [`server`] — a `std::net` accept loop, one thread per connection,
//!   every connection dispatching into one shared
//!   [`SpaApi`](spa_core::SpaApi). No async runtime, no framework: the
//!   platform's own locks are the concurrency model.
//! * [`client`] — a blocking client speaking the same frames, used by
//!   the open-loop latency harness and the bit-identity smoke tests.
//!
//! The serving contract: a request dispatched through this stack and
//! the identical request dispatched in-process return **bit-identical**
//! responses (`spa-server/tests/server_smoke.rs` enforces it byte for
//! byte).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::SpaClient;
pub use server::{serve, ServerHandle, ServerStats};
pub use spa_core::{ApiRequest, ApiResponse, RecoverStatus, SpaApi};
