//! TCP serving layer for the SPA platform.
//!
//! A deliberately small, dependency-free stack in four pieces:
//!
//! * [`wire`] — a compact binary protocol. Every message travels in the
//!   **same frame the write-ahead log uses on disk**
//!   (`len: u32 | crc: u32 | payload`, little-endian, CRC-32 over the
//!   payload), and `Ingest` payloads carry events in the WAL's own
//!   encoding — a bit flipped in flight is as loud as a bit flipped on
//!   a platter, and a torn request is rejected exactly like a torn log
//!   tail. Every request rides under a 20-byte envelope (client id +
//!   sent stamp + relative deadline); every response echoes the id and
//!   whether it was replayed from the dedup window.
//! * [`server`] — a `std::net` accept loop, one thread per connection,
//!   every connection dispatching into one shared
//!   [`SpaApi`](spa_core::SpaApi). No async runtime, no framework: the
//!   platform's own locks are the concurrency model. Admission control
//!   (bounded in-flight, connection cap), idle/slow-loris reaping,
//!   deadline refusal and a graceful drain path keep it standing under
//!   overload.
//! * [`client`] — a blocking client speaking the same frames, with
//!   default socket timeouts, typed retryable errors and
//!   idempotent-by-id retry.
//! * [`netfault`] — deterministic, ledgered network fault injection
//!   (connection drops, stalls, partial writes) for the chaos soak.
//!
//! The serving contract: a request dispatched through this stack and
//! the identical request dispatched in-process return **bit-identical**
//! responses (`spa-server/tests/server_smoke.rs` enforces it byte for
//! byte), and a mutation retried under one envelope id lands **exactly
//! once** no matter how many connections died under it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod netfault;
pub mod server;
pub mod wire;

pub use client::{CallOutcome, CallReport, ClientConfig, ClientError, RetryPolicy, SpaClient};
pub use netfault::{
    CallFault, NetFaultConfig, NetFaultCounts, NetFaultLedger, NetFaultPlan, INJECTED_NET_DROP,
    INJECTED_NET_STALL, MASKED_RESPONSE_LOSS,
};
pub use server::{
    serve, serve_with, DrainReport, ServeOptions, ServerCounts, ServerHandle, ServerStats,
};
pub use spa_core::{
    ApiRequest, ApiResponse, RecoverStatus, RequestEnvelope, SpaApi, ERR_DEADLINE_EXCEEDED,
    ERR_DRAINING, ERR_SERVER_BUSY,
};
