//! A blocking client for the serving protocol: one TCP connection, one
//! in-flight request at a time (open-loop harnesses hold one client
//! per worker) — with the robustness half of the contract:
//!
//! * **default socket timeouts** — a server that dies between request
//!   and response surfaces as a typed, retryable
//!   [`ClientError::TimedOut`] instead of blocking the caller forever;
//! * **typed errors** — every failure classifies as retryable or not
//!   ([`ClientError::is_retryable`]), and marker-bearing server
//!   rejections (busy, draining, deadline) arrive as their own
//!   variants rather than as responses the caller must sniff;
//! * **idempotent retry** — [`SpaClient::call_with_retry`] keeps one
//!   request id across attempts and backs off with seeded jitter, so
//!   a mutation retried through torn connections lands exactly once
//!   (the server's dedup window replays the cached response);
//! * **fault injection** — an attached [`NetFaultPlan`] tears, drops
//!   and stalls calls deterministically for the chaos soak.
//!
//! After *any* transport failure the connection is discarded (a byte
//! stream that failed mid-frame cannot be re-aligned); the next call
//! reconnects transparently.

use crate::netfault::{
    CallFault, NetFaultPlan, INJECTED_NET_DROP, INJECTED_NET_STALL, MASKED_RESPONSE_LOSS,
};

/// Suffix appended to an injected rx-drop/stall error when the
/// discarded response read itself failed (see [`MASKED_RESPONSE_LOSS`]).
fn masked_suffix(masked: bool) -> String {
    if masked {
        format!("; {MASKED_RESPONSE_LOSS}")
    } else {
        String::new()
    }
}
use crate::wire;
use bytes::BytesMut;
use spa_core::{
    ApiRequest, ApiResponse, RequestEnvelope, ERR_DEADLINE_EXCEEDED, ERR_DRAINING, ERR_SERVER_BUSY,
};
use spa_store::fault::SplitMix64;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Why a call failed, classified for retry.
#[derive(Debug)]
pub enum ClientError {
    /// A socket timeout expired (connect, send, or awaiting the
    /// response). The request may or may not have executed — retry
    /// with the same id to find out safely.
    TimedOut(String),
    /// The connection died (reset, closed, torn response). Same
    /// ambiguity as a timeout: retry with the same id.
    Disconnected(String),
    /// The server refused fast without executing: in-flight limit
    /// shed, connection cap, or draining. Back off and retry.
    Busy(String),
    /// The request arrived past its envelope deadline and was refused
    /// without executing.
    DeadlineExceeded(String),
    /// Protocol corruption: a frame failed its CRC, a response did not
    /// decode, or its id did not match. Not retryable — this is a bug
    /// or an attacker, not weather.
    Corrupt(String),
    /// Any other transport error (e.g. connection refused while the
    /// server is down — retryable once it returns).
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::TimedOut(m) => write!(f, "timed out: {m}"),
            ClientError::Disconnected(m) => write!(f, "disconnected: {m}"),
            ClientError::Busy(m) => write!(f, "busy: {m}"),
            ClientError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            ClientError::Corrupt(m) => write!(f, "corrupt: {m}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether retrying (same request id) is safe and sensible.
    /// Everything except [`ClientError::Corrupt`] is: timeouts,
    /// disconnects and deadline expiries are ambiguity the dedup
    /// window resolves, busy is back-pressure, and plain I/O errors
    /// (server down) heal when it returns.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ClientError::Corrupt(_))
    }

    /// The error's descriptive text (marker substrings included, so a
    /// harness can attribute injected faults).
    pub fn text(&self) -> String {
        match self {
            ClientError::TimedOut(m)
            | ClientError::Disconnected(m)
            | ClientError::Busy(m)
            | ClientError::DeadlineExceeded(m)
            | ClientError::Corrupt(m) => m.clone(),
            ClientError::Io(e) => e.to_string(),
        }
    }
}

/// Retry/backoff shape for [`SpaClient::call_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(160),
        }
    }
}

/// Connection and behavior knobs for one client.
#[derive(Clone)]
pub struct ClientConfig {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout — the fix for "blocks forever when the
    /// server dies between request and response".
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Relative deadline stamped into every envelope this client
    /// sends (`0` = none).
    pub deadline_micros: u32,
    /// Retry/backoff shape for [`SpaClient::call_with_retry`].
    pub retry: RetryPolicy,
    /// Seed for request-id generation and backoff jitter. `None`
    /// derives one from the clock and a process counter (unique ids
    /// without coordination); fix it for deterministic harnesses —
    /// distinct clients MUST use distinct seeds, or their ids collide
    /// in the server's dedup window and replay each other's responses.
    pub seed: Option<u64>,
    /// Client-side fault injection (chaos only).
    pub fault: Option<Arc<NetFaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            deadline_micros: 0,
            retry: RetryPolicy::default(),
            seed: None,
            fault: None,
        }
    }
}

/// One successful call's response plus its envelope metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The response.
    pub response: ApiResponse,
    /// The server answered from its dedup window (an earlier attempt
    /// with this id had already executed).
    pub replayed: bool,
}

/// What [`SpaClient::call_with_retry`] went through to succeed.
#[derive(Debug, Clone, PartialEq)]
pub struct CallReport {
    /// The response.
    pub response: ApiResponse,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the final answer was a dedup replay.
    pub replayed: bool,
}

static CLIENT_SALT: AtomicU64 = AtomicU64::new(0);

fn derived_seed() -> u64 {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0);
    (nanos as u64) ^ CLIENT_SALT.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// A connected serving client (reconnects transparently after
/// transport failures).
pub struct SpaClient {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    scratch: BytesMut,
    /// Request-id stream — 64-bit SplitMix64 draws, `0` skipped.
    ids: SplitMix64,
    /// Backoff jitter stream, independent of the id stream.
    jitter: SplitMix64,
}

impl SpaClient {
    /// Connects with default [`ClientConfig`] (timeouts on).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit configuration.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        let seed = config.seed.unwrap_or_else(derived_seed);
        let mut client = Self {
            addr,
            config,
            stream: None,
            scratch: BytesMut::new(),
            ids: SplitMix64::new(seed),
            jitter: SplitMix64::new(seed ^ 0xB0FF_5EED),
        };
        client.reconnect().map_err(|e| match e {
            ClientError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::ConnectionRefused, other.to_string()),
        })?;
        Ok(client)
    }

    /// The address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A fresh nonzero request id from this client's seeded stream.
    pub fn next_request_id(&mut self) -> u64 {
        loop {
            let id = self.ids.next_u64();
            if id != 0 {
                return id;
            }
        }
    }

    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.stream = None;
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout),
            None => TcpStream::connect(self.addr),
        }
        .map_err(|e| {
            if e.kind() == io::ErrorKind::TimedOut {
                ClientError::TimedOut(format!("connect to {}: {e}", self.addr))
            } else {
                ClientError::Io(e)
            }
        })?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream.set_read_timeout(self.config.read_timeout).map_err(ClientError::Io)?;
        stream.set_write_timeout(self.config.write_timeout).map_err(ClientError::Io)?;
        self.stream = Some(stream);
        Ok(())
    }

    /// Sends one request under a fresh envelope (new id, configured
    /// deadline) and blocks for its response.
    ///
    /// Transport failures and protocol corruption surface as
    /// [`ClientError`]; a platform-side failure arrives as a
    /// well-formed [`ApiResponse::Error`] value instead — except the
    /// marker-bearing robustness rejections (busy / draining /
    /// deadline), which map to their own [`ClientError`] variants.
    pub fn call(&mut self, request: &ApiRequest) -> Result<ApiResponse, ClientError> {
        let envelope =
            RequestEnvelope::stamped(self.next_request_id(), self.config.deadline_micros);
        self.call_enveloped(&envelope, request).map(|outcome| outcome.response)
    }

    /// Sends one request under an explicit envelope (the harness entry
    /// point: the caller controls the idempotency key).
    pub fn call_enveloped(
        &mut self,
        envelope: &RequestEnvelope,
        request: &ApiRequest,
    ) -> Result<CallOutcome, ClientError> {
        let fault =
            self.config.fault.clone().and_then(|plan| plan.draw_call_fault().map(|f| (plan, f)));
        let outcome = self.attempt(envelope, request, fault);
        if outcome.is_err() {
            // a failed byte stream cannot be re-aligned: force the
            // next call onto a fresh connection
            self.stream = None;
        }
        outcome
    }

    /// Retries `request` under **one** request id until it succeeds,
    /// the attempt budget is spent, or a non-retryable error surfaces.
    /// The envelope's `sent` stamp refreshes per attempt (each attempt
    /// gets the full deadline); the id never changes, so an attempt
    /// that executed but lost its response is answered from the
    /// server's dedup window instead of executing again.
    pub fn call_with_retry(&mut self, request: &ApiRequest) -> Result<CallReport, ClientError> {
        let id = self.next_request_id();
        self.retry_enveloped(id, request)
    }

    /// [`SpaClient::call_with_retry`] with a caller-chosen id.
    pub fn retry_enveloped(
        &mut self,
        id: u64,
        request: &ApiRequest,
    ) -> Result<CallReport, ClientError> {
        let policy = self.config.retry;
        let mut last_error = None;
        for attempt in 1..=policy.max_attempts.max(1) {
            if attempt > 1 {
                self.backoff(attempt - 2);
            }
            let envelope = RequestEnvelope::stamped(id, self.config.deadline_micros);
            match self.call_enveloped(&envelope, request) {
                Ok(outcome) => {
                    return Ok(CallReport {
                        response: outcome.response,
                        attempts: attempt,
                        replayed: outcome.replayed,
                    })
                }
                Err(error) if error.is_retryable() => last_error = Some(error),
                Err(error) => return Err(error),
            }
        }
        Err(last_error.expect("at least one attempt ran"))
    }

    fn backoff(&mut self, exponent: u32) {
        let policy = self.config.retry;
        let base = policy
            .initial_backoff
            .saturating_mul(1u32 << exponent.min(16))
            .min(policy.max_backoff)
            .max(Duration::from_micros(1));
        // jitter in [50%, 150%) — seeded, so a fixed-seed harness
        // replays the identical pacing
        let micros = base.as_micros() as u64;
        let jittered = micros / 2 + self.jitter.gen_range(micros.max(1));
        std::thread::sleep(Duration::from_micros(jittered));
    }

    fn attempt(
        &mut self,
        envelope: &RequestEnvelope,
        request: &ApiRequest,
        fault: Option<(Arc<NetFaultPlan>, CallFault)>,
    ) -> Result<CallOutcome, ClientError> {
        if self.stream.is_none() {
            self.reconnect()?;
        }
        self.scratch.clear();
        wire::encode_enveloped_request(envelope, request, &mut self.scratch);
        let stream = self.stream.as_mut().expect("connected above");
        match &fault {
            Some((plan, CallFault::DropTx)) => {
                // deliver a strict prefix of the frame, then sever: by
                // the wire contract the server dispatches nothing
                let mut frame = Vec::with_capacity(self.scratch.len() + 8);
                wire::send_frame(&mut frame, &self.scratch).expect("vec write");
                let keep = plan.draw_tear_point(frame.len());
                let _ = stream.write_all(&frame[..keep]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return Err(ClientError::Disconnected(format!(
                    "{INJECTED_NET_DROP} (tx): request torn at byte {keep}/{}",
                    frame.len()
                )));
            }
            Some((plan, CallFault::PartialWrite)) => {
                // the frame lands in two writes — TCP must absorb it
                let mut frame = Vec::with_capacity(self.scratch.len() + 8);
                wire::send_frame(&mut frame, &self.scratch).expect("vec write");
                let split = plan.draw_tear_point(frame.len()).max(1);
                send_bytes(stream, &frame[..split])?;
                send_bytes(stream, &frame[split..])?;
            }
            _ => {
                let payload = self.scratch.split().freeze();
                send_payload(stream, &payload)?;
            }
        }
        match fault {
            Some((_, CallFault::DropRx)) => {
                // the request was fully delivered and dispatched; the
                // caller never learns the outcome. The response is
                // consumed and DISCARDED before severing, so the
                // "request executed" guarantee cannot be raced away by
                // an RST destroying the unread request frame. If the
                // discarded read itself failed, the peer dropped the
                // response first — say so, or an exact-accounting
                // harness would see that server-side drop masked
                let masked = !matches!(wire::recv_frame(stream), Ok(Some(_)));
                let _ = stream.shutdown(Shutdown::Both);
                return Err(ClientError::Disconnected(format!(
                    "{INJECTED_NET_DROP} (rx): connection severed before the response{}",
                    masked_suffix(masked)
                )));
            }
            Some((_, CallFault::Stall)) => {
                // the response "never arrives in time": consumed and
                // discarded (same determinism argument as DropRx), the
                // timeout surfaced immediately with no real sleep
                let masked = !matches!(wire::recv_frame(stream), Ok(Some(_)));
                return Err(ClientError::TimedOut(format!(
                    "{INJECTED_NET_STALL}: response abandoned past the read timeout{}",
                    masked_suffix(masked)
                )));
            }
            _ => {}
        }
        let payload = match wire::recv_frame(stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(ClientError::Disconnected(
                    "server closed before responding".to_string(),
                ))
            }
            Err(error) => return Err(classify_io(error)),
        };
        let (id, replayed, response) = wire::decode_enveloped_response(&payload)
            .map_err(|error| ClientError::Corrupt(error.to_string()))?;
        if id == 0 && envelope.id != 0 {
            // a connection-level rejection, answered before (or
            // instead of) our envelope: a connection-cap refusal is
            // back-pressure, anything else is protocol damage
            let message = match &response {
                ApiResponse::Error { message } => message.clone(),
                other => format!("unexpected id-0 response {other:?}"),
            };
            return Err(if message.contains(ERR_SERVER_BUSY) || message.contains(ERR_DRAINING) {
                ClientError::Busy(message)
            } else {
                ClientError::Corrupt(message)
            });
        }
        if id != envelope.id {
            return Err(ClientError::Corrupt(format!(
                "response id {id:#x} does not answer request id {:#x}",
                envelope.id
            )));
        }
        if let ApiResponse::Error { message } = &response {
            if message.contains(ERR_SERVER_BUSY) || message.contains(ERR_DRAINING) {
                return Err(ClientError::Busy(message.clone()));
            }
            if message.contains(ERR_DEADLINE_EXCEEDED) {
                return Err(ClientError::DeadlineExceeded(message.clone()));
            }
        }
        Ok(CallOutcome { response, replayed })
    }
}

fn classify_io(error: io::Error) -> ClientError {
    match error.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
            ClientError::TimedOut(error.to_string())
        }
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => ClientError::Disconnected(error.to_string()),
        io::ErrorKind::InvalidData => ClientError::Corrupt(error.to_string()),
        _ => ClientError::Io(error),
    }
}

fn send_payload(stream: &mut TcpStream, payload: &[u8]) -> Result<(), ClientError> {
    wire::send_frame(stream, payload).map_err(classify_io)
}

fn send_bytes(stream: &mut TcpStream, bytes: &[u8]) -> Result<(), ClientError> {
    stream.write_all(bytes).and_then(|()| stream.flush()).map_err(classify_io)
}
