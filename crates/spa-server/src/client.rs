//! A blocking client for the serving protocol: one TCP connection, one
//! in-flight request at a time (open-loop harnesses hold one client
//! per worker).

use crate::wire;
use bytes::BytesMut;
use spa_core::{ApiRequest, ApiResponse};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A connected serving client.
pub struct SpaClient {
    stream: TcpStream,
    scratch: BytesMut,
}

impl SpaClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, scratch: BytesMut::new() })
    }

    /// Sends one request and blocks for its response.
    ///
    /// Transport failures and protocol corruption surface as
    /// `io::Error`; a platform-side failure arrives as a well-formed
    /// [`ApiResponse::Error`] value instead.
    pub fn call(&mut self, request: &ApiRequest) -> io::Result<ApiResponse> {
        self.scratch.clear();
        wire::encode_request(request, &mut self.scratch);
        wire::send_frame(&mut self.stream, &self.scratch)?;
        let payload = wire::recv_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed before responding")
        })?;
        wire::decode_response(&payload)
            .map_err(|error| io::Error::new(io::ErrorKind::InvalidData, error.to_string()))
    }
}
