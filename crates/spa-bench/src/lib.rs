//! # spa-bench — benchmark harness
//!
//! Criterion benches, one per paper artifact (see `benches/`):
//!
//! | bench | paper artifact |
//! |---|---|
//! | `fig6_campaigns` | Fig 6(a) cumulative redemption + Fig 6(b) predictive scores |
//! | `fig5_messaging` | Fig 5 message-assignment cases |
//! | `fig4_convergence` | Fig 4 iterative attribute discovery |
//! | `table1_eit` | Table 1 Four-Branch EIT |
//! | `dataset_synth` | §5.1 dataset generation |
//! | `ablation_emotional` | E7 emotional-context ablation |
//! | `substrates` | micro-benches of the SVM, sparse kernels, event log and profile store |
//! | `sharded` | sharded vs single-platform ingest/scoring + durable-ingest/recovery costs |
//!
//! Each figure/table bench prints the regenerated artifact once during
//! setup (so `cargo bench` reproduces the numbers reported in
//! `EXPERIMENTS.md`) and then times the dominant computation.

/// Shared scale used by the figure benches so setup stays fast while the
/// artifact shapes remain visible.
pub const BENCH_USERS: usize = 2_000;
