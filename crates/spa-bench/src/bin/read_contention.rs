//! In-process read-contention probe.
//!
//! The TCP harness (`serving_latency`) measures the full serving stack,
//! where connection scheduling and syscall jitter drown out µs-scale
//! storage effects. This probe strips all of that away: reader threads
//! call [`ShardedSpa::score_users`] directly in a closed loop and
//! record per-call latency, while (optionally) one writer thread drives
//! `ingest_batch` flat-out against the same platform. The delta between
//! writers-off and writers-on percentiles is exactly the read path's
//! exposure to ingest — the quantity the epoch-published snapshot
//! design is meant to pin at zero.
//!
//! Environment knobs (all optional):
//!
//! * `SPA_READ_SECONDS` — run length (default 4)
//! * `SPA_READ_THREADS` — reader threads (default 2)
//! * `SPA_READ_AUDIENCE` — users per score call (default 16)
//! * `SPA_READ_WRITER` — 1 = flat-out ingest writer on (default 0)
//! * `SPA_READ_WRITER_BATCH` — events per writer batch (default 128)
//! * `SPA_BENCH_OUT` — output path (default stdout summary only)

use spa_core::platform::SpaConfig;
use spa_core::ShardedSpa;
use spa_synth::catalog::CourseCatalog;
use spa_types::{
    CampaignId, CourseId, EmotionalAttribute, EventKind, LifeLogEvent, Timestamp, UserId,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const N_USERS: u32 = 400;
const SHARDS: usize = 3;
const CAMPAIGN: CampaignId = CampaignId::new(1);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let seconds = env_u64("SPA_READ_SECONDS", 4).max(1);
    let threads = env_u64("SPA_READ_THREADS", 2).max(1) as usize;
    let audience = env_u64("SPA_READ_AUDIENCE", 16).max(1) as usize;
    let writer_on = env_u64("SPA_READ_WRITER", 0) != 0;
    let writer_batch = env_u64("SPA_READ_WRITER_BATCH", 128).max(1) as usize;

    let courses = CourseCatalog::generate(25, 5, 3).expect("catalog");
    let sharded = ShardedSpa::new(&courses, SpaConfig::default(), SHARDS).expect("platform");
    sharded.register_campaign(CAMPAIGN, &[EmotionalAttribute::Hopeful]);
    for raw in 0..N_USERS {
        sharded
            .ingest(&LifeLogEvent::new(
                UserId::new(raw),
                Timestamp::from_millis(raw as u64),
                EventKind::Transaction {
                    course: CourseId::new(raw % 25),
                    campaign: Some(CAMPAIGN),
                },
            ))
            .expect("seed ingest");
    }
    let data = {
        let mut data = spa_ml::Dataset::new(75);
        for raw in 0..N_USERS {
            let row = sharded.advice_row(UserId::new(raw)).expect("advice row");
            data.push(&row, if raw % 2 == 0 { 1.0 } else { -1.0 }).expect("push");
        }
        data
    };
    sharded.train_selection(&data).expect("train");

    let stop = AtomicBool::new(false);
    let events_applied = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs(seconds);

    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    let platform = &sharded;
    std::thread::scope(|scope| {
        if writer_on {
            scope.spawn(|| {
                let mut at = 10_000_000u64;
                while !stop.load(Ordering::Acquire) {
                    let events: Vec<LifeLogEvent> = (0..writer_batch)
                        .map(|_| {
                            at += 1;
                            LifeLogEvent::new(
                                UserId::new((at % N_USERS as u64) as u32),
                                Timestamp::from_millis(at),
                                EventKind::Transaction {
                                    course: CourseId::new((at % 25) as u32),
                                    campaign: Some(CAMPAIGN),
                                },
                            )
                        })
                        .collect();
                    let applied = platform.ingest_batch(events.iter()).expect("ingest");
                    events_applied.fetch_add(applied as u64, Ordering::Relaxed);
                }
            });
        }
        let readers: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    // each reader sweeps its own rotating window of the
                    // population so cache rows stay warm but distinct
                    let mut latencies = Vec::with_capacity(1 << 18);
                    let mut offset = (t as u32) * 37;
                    while Instant::now() < deadline {
                        let users: Vec<UserId> = (0..audience as u32)
                            .map(|i| UserId::new((offset + i) % N_USERS))
                            .collect();
                        offset = offset.wrapping_add(audience as u32);
                        let begun = Instant::now();
                        platform.score_users(&users).expect("score");
                        latencies.push(begun.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();
        per_thread = readers.into_iter().map(|h| h.join().expect("reader")).collect();
        stop.store(true, Ordering::Release);
    });

    let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
    all.sort_unstable();
    let calls = all.len() as u64;
    let p50 = percentile(&all, 0.50) as f64 / 1_000.0;
    let p90 = percentile(&all, 0.90) as f64 / 1_000.0;
    let p99 = percentile(&all, 0.99) as f64 / 1_000.0;
    let p999 = percentile(&all, 0.999) as f64 / 1_000.0;
    let max = all.last().copied().unwrap_or(0) as f64 / 1_000.0;
    let applied = events_applied.load(Ordering::Relaxed);
    let writer_rate = applied as f64 / seconds as f64;

    eprintln!(
        "[read_contention] {calls} score({audience}) calls on {threads} threads over {seconds}s, \
         writer {} ({writer_rate:.0} events/s): p50 {p50:.1}us p90 {p90:.1}us p99 {p99:.1}us \
         p999 {p999:.1}us max {max:.1}us",
        if writer_on { "ON" } else { "off" },
    );

    if let Ok(out_path) = std::env::var("SPA_BENCH_OUT") {
        let json = format!(
            "{{\n  \"probe\": \"read_contention\",\n  \"config\": {{\n    \"seconds\": {seconds},\n    \
             \"reader_threads\": {threads},\n    \"audience\": {audience},\n    \"writer\": \
             {writer_on},\n    \"writer_batch\": {writer_batch},\n    \"users\": {N_USERS},\n    \
             \"shards\": {SHARDS}\n  }},\n  \"score_calls\": {calls},\n  \"writer_events_per_sec\": \
             {writer_rate:.0},\n  \"score_us\": {{ \"p50\": {p50:.1}, \"p90\": {p90:.1}, \"p99\": \
             {p99:.1}, \"p999\": {p999:.1}, \"max\": {max:.1} }}\n}}\n"
        );
        std::fs::write(&out_path, json).expect("write bench output");
    }
}
