//! Open-loop serving-latency harness.
//!
//! Boots the TCP server over a WAL-backed [`ShardedSpa`] and drives a
//! mixed read/write workload at a **target arrival rate**, not as fast
//! as responses come back. The distinction is the whole methodology:
//! a closed-loop driver (send, wait, send) slows itself down whenever
//! the server stalls, silently deleting the queueing delay real
//! arrivals would have suffered — the "coordinated omission" artifact.
//! Here every request has a *scheduled* arrival time computed before
//! the run (Poisson by default, fixed-interval on request), latency is
//! measured from that scheduled arrival to completion, and a stalled
//! server therefore pays for every request that piled up behind the
//! stall.
//!
//! Environment knobs (all optional):
//!
//! * `SPA_SERVE_QPS`      — target arrivals/second (default 800)
//! * `SPA_SERVE_SECONDS`  — run length (default 4)
//! * `SPA_SERVE_WORKERS`  — client connections (default 4)
//! * `SPA_SERVE_SHARDS`   — platform shards (default 3)
//! * `SPA_SERVE_ARRIVALS` — `poisson` (default) or `fixed`
//! * `SPA_SERVE_SEED`     — workload seed (default 2026)
//! * `SPA_SERVE_MAX_INFLIGHT` — server in-flight admission limit
//!   (default 0 = unlimited). Set low against a high `SPA_SERVE_QPS`
//!   to measure behavior past saturation: shed responses are counted
//!   (never panicked on) and **goodput** percentiles (served-only) are
//!   reported alongside all-response latencies.
//! * `SPA_SERVE_WRITER_QPS` — writer-contention mode: background
//!   `ingest_batch` calls per second against the same platform
//!   (default 0 = off). Writers run open-loop on their own schedule,
//!   directly on the shared [`ShardedSpa`] — pure storage-layer
//!   contention, no server connection slots consumed — so read-class
//!   percentiles with writers armed vs. silent isolate how much read
//!   latency is hostage to ingest.
//! * `SPA_SERVE_WRITER_BATCH` — events per writer batch (default 32)
//! * `SPA_BENCH_OUT`      — output path (default
//!   `BENCH_<today>_serving.json`)

use spa_core::platform::SpaConfig;
use spa_core::{ApiRequest, ApiResponse, ShardedSpa, SpaApi};
use spa_server::{serve_with, ClientError, ServeOptions, SpaClient};
use spa_store::fault::SplitMix64;
use spa_store::log::LogConfig;
use spa_synth::catalog::CourseCatalog;
use spa_types::{
    CampaignId, CourseId, EmotionalAttribute, EventKind, LifeLogEvent, Timestamp, UserId, Valence,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const N_USERS: u32 = 400;
const SCORE_AUDIENCE: usize = 16;
const RANK_AUDIENCE: usize = 64;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Request classes in the mix, with their traffic shares.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    Score,
    RankTopK,
    Ingest,
    ObserveOutcome,
}

impl Class {
    const ALL: [Class; 4] = [Class::Score, Class::RankTopK, Class::Ingest, Class::ObserveOutcome];

    fn name(self) -> &'static str {
        match self {
            Class::Score => "score",
            Class::RankTopK => "rank_top_k",
            Class::Ingest => "ingest",
            Class::ObserveOutcome => "observe_outcome",
        }
    }

    /// 70% score, 10% rank, 15% ingest, 5% outcomes — read-heavy like
    /// a serving tier, write-present like a live platform.
    fn pick(rng: &mut SplitMix64) -> Class {
        match rng.gen_range(100) {
            0..=69 => Class::Score,
            70..=79 => Class::RankTopK,
            80..=94 => Class::Ingest,
            _ => Class::ObserveOutcome,
        }
    }
}

/// How the server answered one scheduled request.
#[derive(Clone, Copy)]
enum Outcome {
    Served,
    Shed,
    DeadlineRejected,
}

fn make_request(class: Class, rng: &mut SplitMix64, step: usize) -> ApiRequest {
    let user = |rng: &mut SplitMix64| UserId::new(rng.gen_range(N_USERS as u64) as u32);
    match class {
        Class::Score => {
            ApiRequest::Score { users: (0..SCORE_AUDIENCE).map(|_| user(rng)).collect() }
        }
        Class::RankTopK => {
            ApiRequest::RankTopK { users: (0..RANK_AUDIENCE).map(|_| user(rng)).collect(), k: 8 }
        }
        Class::Ingest => ApiRequest::Ingest {
            event: LifeLogEvent::new(
                user(rng),
                Timestamp::from_millis(step as u64),
                EventKind::Transaction {
                    course: CourseId::new(rng.gen_range(25) as u32),
                    campaign: Some(CampaignId::new(1)),
                },
            ),
        },
        Class::ObserveOutcome => {
            ApiRequest::ObserveOutcome { user: user(rng), responded: rng.gen_range(2) == 0 }
        }
    }
}

/// Waits until `target`, sleeping the bulk and spinning the last
/// stretch so OS sleep granularity does not pollute the tail.
fn wait_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remaining = target - now;
        if remaining > Duration::from_micros(800) {
            std::thread::sleep(remaining - Duration::from_micros(500));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Today's date as `YYYY-MM-DD` (days-from-epoch → civil date).
fn today() -> String {
    let days = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_secs() / 86_400;
    let mut z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    z = z.rem_euclid(146_097);
    let yoe = (z - z / 1460 + z / 36_524 - z / 146_096) / 365;
    let doy = z - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = era * 400 + yoe + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

struct ClassDigest {
    name: &'static str,
    count: usize,
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

fn digest(name: &'static str, mut latencies: Vec<u64>) -> ClassDigest {
    latencies.sort_unstable();
    ClassDigest {
        name,
        count: latencies.len(),
        p50: percentile(&latencies, 50.0),
        p90: percentile(&latencies, 90.0),
        p99: percentile(&latencies, 99.0),
        p999: percentile(&latencies, 99.9),
        max: latencies.last().copied().unwrap_or(0),
    }
}

fn main() {
    let qps = env_u64("SPA_SERVE_QPS", 800).max(1);
    let seconds = env_u64("SPA_SERVE_SECONDS", 4).max(1);
    let workers = env_u64("SPA_SERVE_WORKERS", 4).max(1) as usize;
    let shards = env_u64("SPA_SERVE_SHARDS", 3).max(1) as usize;
    let seed = env_u64("SPA_SERVE_SEED", 2026);
    let max_in_flight = env_u64("SPA_SERVE_MAX_INFLIGHT", 0) as usize;
    let writer_qps = env_u64("SPA_SERVE_WRITER_QPS", 0);
    let writer_batch = env_u64("SPA_SERVE_WRITER_BATCH", 32).max(1) as usize;
    let arrivals_mode = std::env::var("SPA_SERVE_ARRIVALS").unwrap_or_else(|_| "poisson".into());
    let out_path = std::env::var("SPA_BENCH_OUT")
        .unwrap_or_else(|_| format!("BENCH_{}_serving.json", today()));

    // ---- platform: WAL-backed, seeded, trained ----
    let root = std::env::temp_dir().join(format!("spa-serving-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let spa =
        ShardedSpa::with_log(&courses, SpaConfig::default(), shards, &root, LogConfig::default())
            .unwrap();
    spa.register_campaign(CampaignId::new(1), &[EmotionalAttribute::Hopeful]);
    let mut rng = SplitMix64::new(seed);
    for step in 0..(N_USERS as usize * 3) {
        // every user gets exactly three answers — the outcome mix may
        // draw any of them
        let user = UserId::new((step % N_USERS as usize) as u32);
        let question = spa.next_eit_question(user).id;
        spa.ingest(&LifeLogEvent::new(
            user,
            Timestamp::from_millis(step as u64),
            EventKind::EitAnswer {
                question,
                answer: Valence::new((rng.gen_range(2000) as f64 / 1000.0) - 1.0),
            },
        ))
        .unwrap();
    }
    let mut data = spa_ml::Dataset::new(75);
    for raw in 0..N_USERS {
        if let Ok(row) = spa.advice_row(UserId::new(raw)) {
            data.push(&row, if row.get(65) > 0.4 { 1.0 } else { -1.0 }).unwrap();
        }
    }
    spa.train_selection(&data).unwrap();
    let platform = Arc::new(spa);
    let api = SpaApi::new(platform.clone());
    let options = ServeOptions { max_in_flight, ..ServeOptions::default() };
    let handle = serve_with(Arc::new(api), "127.0.0.1:0", options).unwrap();
    let addr = handle.addr();

    // ---- schedule: arrivals precomputed before the run ----
    let total = (qps * seconds) as usize;
    let mean_gap_ns = 1_000_000_000.0 / qps as f64;
    let mut schedule_rng = SplitMix64::new(seed ^ 0xA221_7A15);
    let mut offsets_ns = Vec::with_capacity(total);
    let mut clock = 0.0f64;
    for _ in 0..total {
        let gap = if arrivals_mode == "fixed" {
            mean_gap_ns
        } else {
            // exponential inter-arrival → Poisson arrivals; u ∈ (0, 1)
            let u = (schedule_rng.gen_range(1 << 53) as f64 + 0.5) / (1u64 << 53) as f64;
            -mean_gap_ns * (1.0 - u).ln()
        };
        clock += gap;
        offsets_ns.push(clock as u64);
    }
    let mut workload_rng = SplitMix64::new(seed ^ 0x09E4_100D);
    let requests: Vec<(Class, ApiRequest)> = (0..total)
        .map(|step| {
            let class = Class::pick(&mut workload_rng);
            (class, make_request(class, &mut workload_rng, step))
        })
        .collect();

    // ---- open-loop drive: workers own disjoint request slices ----
    let t0 = Instant::now() + Duration::from_millis(300);
    let stop_writers = AtomicBool::new(false);
    type WorkerResults = Vec<Vec<(Class, Outcome, u64)>>;
    type WriterReport = Option<(Vec<u64>, u64)>;
    let (worker_results, writer_report): (WorkerResults, WriterReport) =
        std::thread::scope(|scope| {
            // background writer: open-loop ingest_batch load on its own
            // fixed-interval schedule, straight at the platform
            let writer_handle = (writer_qps > 0).then(|| {
                let platform = &platform;
                let stop_writers = &stop_writers;
                scope.spawn(move || {
                    let interval_ns = 1_000_000_000 / writer_qps;
                    let mut rng = SplitMix64::new(seed ^ 0x57A7_E57A);
                    let mut latencies = Vec::new();
                    let mut events_applied = 0u64;
                    let mut tick = 0u64;
                    while !stop_writers.load(Ordering::Relaxed) {
                        wait_until(t0 + Duration::from_nanos(interval_ns * tick));
                        if stop_writers.load(Ordering::Relaxed) {
                            break;
                        }
                        let step0 = 1_000_000 + tick * writer_batch as u64;
                        let events: Vec<LifeLogEvent> = (0..writer_batch)
                            .map(|j| {
                                LifeLogEvent::new(
                                    UserId::new(rng.gen_range(N_USERS as u64) as u32),
                                    Timestamp::from_millis(step0 + j as u64),
                                    EventKind::Transaction {
                                        course: CourseId::new(rng.gen_range(25) as u32),
                                        campaign: Some(CampaignId::new(1)),
                                    },
                                )
                            })
                            .collect();
                        let start = Instant::now();
                        let applied = platform.ingest_batch(&events).expect("writer ingest_batch");
                        latencies.push(start.elapsed().as_nanos() as u64);
                        events_applied += applied as u64;
                        tick += 1;
                    }
                    (latencies, events_applied)
                })
            });
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let my: Vec<(u64, &(Class, ApiRequest))> = offsets_ns
                        .iter()
                        .zip(requests.iter())
                        .skip(w)
                        .step_by(workers)
                        .map(|(&t, r)| (t, r))
                        .collect();
                    scope.spawn(move || {
                        let mut client = SpaClient::connect(addr).expect("connect");
                        let mut measured = Vec::with_capacity(my.len());
                        for (offset, (class, request)) in my {
                            let scheduled = t0 + Duration::from_nanos(offset);
                            wait_until(scheduled);
                            // past saturation the server answers with
                            // fast-fail refusals; they are data, not bugs
                            let outcome = match client.call(request) {
                                Ok(ApiResponse::Error { message }) => {
                                    panic!("server returned an error for {class:?}: {message}")
                                }
                                Ok(_) => Outcome::Served,
                                Err(ClientError::Busy(_)) => Outcome::Shed,
                                Err(ClientError::DeadlineExceeded(_)) => Outcome::DeadlineRejected,
                                Err(error) => panic!("serving call failed for {class:?}: {error}"),
                            };
                            let latency = Instant::now().saturating_duration_since(scheduled);
                            measured.push((*class, outcome, latency.as_nanos() as u64));
                        }
                        measured
                    })
                })
                .collect();
            let results: Vec<_> =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
            stop_writers.store(true, Ordering::Relaxed);
            let writer_report = writer_handle.map(|h| h.join().expect("writer panicked"));
            (results, writer_report)
        });
    let wall = t0.elapsed(); // from the first scheduled arrival's epoch
    let counters = handle.stats().counts();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    // ---- digest: per-class and goodput over SERVED responses only,
    //      plus an all-responses view that includes fast-fail refusals
    let mut by_class: Vec<Vec<u64>> = vec![Vec::new(); Class::ALL.len()];
    let mut served = Vec::with_capacity(total);
    let mut all = Vec::with_capacity(total);
    let (mut shed, mut deadline_rejected) = (0u64, 0u64);
    for (class, outcome, latency) in worker_results.into_iter().flatten() {
        all.push(latency);
        match outcome {
            Outcome::Served => {
                by_class[Class::ALL.iter().position(|&c| c == class).unwrap()].push(latency);
                served.push(latency);
            }
            Outcome::Shed => shed += 1,
            Outcome::DeadlineRejected => deadline_rejected += 1,
        }
    }
    let served_count = served.len() as u64;
    let goodput = digest("goodput", served);
    let overall = digest("all_responses", all);
    let digests: Vec<ClassDigest> = Class::ALL
        .iter()
        .zip(by_class)
        .map(|(&class, latencies)| digest(class.name(), latencies))
        .collect();
    let achieved_qps = total as f64 / wall.as_secs_f64();
    let goodput_qps = served_count as f64 / wall.as_secs_f64();
    let writer_json = match &writer_report {
        Some((latencies, events_applied)) => {
            let d = digest("writer_ingest_batch", latencies.clone());
            format!(
                "{{\"target_batch_qps\": {writer_qps}, \"batch\": {writer_batch}, \
                 \"batches\": {}, \"events_applied\": {events_applied}, \
                 \"achieved_events_per_sec\": {:.1}, \"batch_p50_us\": {:.1}, \
                 \"batch_p99_us\": {:.1}, \"batch_max_us\": {:.1}}}",
                d.count,
                *events_applied as f64 / wall.as_secs_f64(),
                d.p50 as f64 / 1000.0,
                d.p99 as f64 / 1000.0,
                d.max as f64 / 1000.0,
            )
        }
        None => "null".to_string(),
    };

    let mut results = String::new();
    for d in digests.iter().chain([&goodput, &overall]) {
        results.push_str(&format!(
            "    {{\"class\": \"{}\", \"requests\": {}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}}},\n",
            d.name,
            d.count,
            d.p50 as f64 / 1000.0,
            d.p90 as f64 / 1000.0,
            d.p99 as f64 / 1000.0,
            d.p999 as f64 / 1000.0,
            d.max as f64 / 1000.0,
        ));
    }
    results.pop();
    results.pop(); // trailing ",\n"
    let json = format!(
        "{{\n  \"recorded\": \"{date}\",\n  \"commit_context\": \"serving robustness: admission control \
         (bounded in-flight, fast-fail shedding) measured open-loop — goodput vs all-response \
         latency under a configurable in-flight cap\",\n  \"methodology\": \
         \"open-loop: arrivals scheduled before the run ({mode}, target {qps}/s for {seconds}s); \
         latency measured from SCHEDULED arrival to completion, so server stalls pay for every \
         request queued behind them (no coordinated omission). Mix: 70% score({score_n} users), \
         10% rank_top_k({rank_n} users, k=8), 15% ingest, 5% observe_outcome. {workers} client \
         connections, one in-flight request each; WAL-backed {shards}-shard platform, loopback \
         TCP, TCP_NODELAY.\",\n  \"command\": \"cargo run --release -p spa-bench --bin \
         serving_latency\",\n  \"profile\": \"release\",\n  \"config\": {{\"target_qps\": {qps}, \
         \"seconds\": {seconds}, \"workers\": {workers}, \"shards\": {shards}, \"arrivals\": \
         \"{mode}\", \"seed\": {seed}, \"users\": {users}, \"max_in_flight\": \
         {max_in_flight}, \"writer_qps\": {writer_qps}, \"writer_batch\": {writer_batch}}},\n  \
         \"writer\": {writer_json},\n  \"achieved_qps\": {achieved:.1},\n  \"goodput_qps\": \
         {goodput_qps:.1},\n  \"outcomes\": {{\"served\": {served_count}, \"shed\": {shed}, \
         \"deadline_rejected\": {deadline_rejected}}},\n  \"server_counters\": \
         {{\"frames_served\": {frames_served}, \"sheds\": {srv_sheds}, \"dedup_hits\": \
         {dedup_hits}, \"deadline_rejects\": {deadline_rejects}}},\n  \"results_us\": \
         [\n{results}\n  ]\n}}\n",
        date = today(),
        mode = arrivals_mode,
        qps = qps,
        seconds = seconds,
        workers = workers,
        shards = shards,
        seed = seed,
        users = N_USERS,
        score_n = SCORE_AUDIENCE,
        rank_n = RANK_AUDIENCE,
        achieved = achieved_qps,
        goodput_qps = goodput_qps,
        max_in_flight = max_in_flight,
        served_count = served_count,
        shed = shed,
        deadline_rejected = deadline_rejected,
        frames_served = counters.frames_served,
        srv_sheds = counters.sheds,
        dedup_hits = counters.dedup_hits,
        deadline_rejects = counters.deadline_rejects,
        results = results,
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!(
        "[serving_latency] {total} requests at target {qps}/s ({achieved_qps:.0}/s achieved, \
         {goodput_qps:.0}/s goodput), {served_count} served / {shed} shed / {deadline_rejected} \
         past deadline, goodput p50 {:.0}us p99 {:.0}us p999 {:.0}us max {:.1}ms -> {out_path}",
        goodput.p50 as f64 / 1000.0,
        goodput.p99 as f64 / 1000.0,
        goodput.p999 as f64 / 1000.0,
        goodput.max as f64 / 1_000_000.0,
    );
    if let Some((latencies, events_applied)) = &writer_report {
        eprintln!(
            "[serving_latency] writers: {} ingest_batch calls ({} events, {:.0} events/s) \
             concurrent with the read mix",
            latencies.len(),
            events_applied,
            *events_applied as f64 / wall.as_secs_f64(),
        );
    }
}
