//! Fig 5 bench: regenerates the three message-individualization cases
//! and times the Messaging Agent's assignment pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use spa_core::messaging::{MessageCatalog, MessagePolicy, MessagingAgent};
use spa_types::EmotionalAttribute::*;
use std::hint::black_box;

fn regenerate_fig5() {
    let catalog = MessageCatalog::standard_catalog("the course");
    println!("\n=== regenerated Fig 5 ===");
    let a = MessagingAgent::new(catalog.clone(), MessagePolicy::MaxSensibility);
    let fig5a = a.assign(&[Enthusiastic, Impatient], &[(Enthusiastic, 0.95)]).unwrap();
    println!("(a) [{:?}] {}", fig5a.case, fig5a.text);
    let p = MessagingAgent::new(catalog.clone(), MessagePolicy::Priority);
    let fig5b = p
        .assign(
            &[Lively, Stimulated, Shy, Frightened],
            &[(Frightened, 0.99), (Shy, 0.92), (Stimulated, 0.85), (Lively, 0.80)],
        )
        .unwrap();
    println!("(b) [{:?}] matches {:?}", fig5b.case, fig5b.matches);
    let fig5c = a.assign(&[Motivated, Hopeful], &[(Hopeful, 0.92), (Motivated, 0.74)]).unwrap();
    println!("(c) [{:?}] attribute {:?}\n", fig5c.case, fig5c.attribute);
}

fn bench_assignment(c: &mut Criterion) {
    let agent = MessagingAgent::new(
        MessageCatalog::standard_catalog("the course"),
        MessagePolicy::MaxSensibility,
    );
    let priority_agent = MessagingAgent::new(
        MessageCatalog::standard_catalog("the course"),
        MessagePolicy::Priority,
    );
    let product = [Lively, Stimulated, Shy, Frightened, Hopeful];
    let sens =
        [(Frightened, 0.99), (Shy, 0.92), (Stimulated, 0.85), (Lively, 0.80), (Empathic, 0.7)];
    let mut group = c.benchmark_group("fig5");
    group.bench_function("assign_max_sensibility", |b| {
        b.iter(|| black_box(agent.assign(black_box(&product), black_box(&sens)).unwrap()))
    });
    group.bench_function("assign_priority", |b| {
        b.iter(|| black_box(priority_agent.assign(black_box(&product), black_box(&sens)).unwrap()))
    });
    group.bench_function("assign_standard_fallback", |b| {
        b.iter(|| black_box(agent.assign(black_box(&[Apathetic]), black_box(&sens)).unwrap()))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    regenerate_fig5();
    bench_assignment(c);
}

criterion_group!(fig5, benches);
criterion_main!(fig5);
