//! §5.1 bench (E5): regenerates the dataset inventory and times the
//! synthetic substrate — population generation, WebLog streaming, and
//! observed-feature extraction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spa_bench::BENCH_USERS;
use spa_synth::catalog::{ActionCatalog, CourseCatalog};
use spa_synth::weblog::{generate_weblogs, WeblogConfig};
use spa_synth::{Population, PopulationConfig};
use spa_types::UserId;
use std::hint::black_box;

fn regenerate_stats() {
    let population =
        Population::generate(PopulationConfig { n_users: BENCH_USERS, ..Default::default() })
            .unwrap();
    let actions = ActionCatalog::emagister();
    let courses = CourseCatalog::generate(100, 12, 5).unwrap();
    let mut events = 0u64;
    let stats = generate_weblogs(&population, &actions, &courses, &WeblogConfig::default(), |_| {
        events += 1
    })
    .unwrap();
    println!("\n=== regenerated §5.1 inventory at {BENCH_USERS} users ===");
    println!("attributes 75, actions {}, emotional 10", actions.len());
    println!(
        "weblog events {} ({} transactions), ≈{:.1} MB/month raw",
        stats.events,
        stats.transactions,
        stats.estimated_bytes_per_month as f64 / (1024.0 * 1024.0)
    );
}

fn benches(c: &mut Criterion) {
    regenerate_stats();

    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BENCH_USERS as u64));
    group.bench_function("population_generate", |b| {
        b.iter(|| {
            black_box(
                Population::generate(PopulationConfig {
                    n_users: BENCH_USERS,
                    ..Default::default()
                })
                .unwrap()
                .len(),
            )
        })
    });

    let population =
        Population::generate(PopulationConfig { n_users: BENCH_USERS, ..Default::default() })
            .unwrap();
    let actions = ActionCatalog::emagister();
    let courses = CourseCatalog::generate(100, 12, 5).unwrap();
    group.bench_function("weblog_generation", |b| {
        b.iter(|| {
            let mut n = 0u64;
            generate_weblogs(&population, &actions, &courses, &WeblogConfig::default(), |_| n += 1)
                .unwrap();
            black_box(n)
        })
    });
    group.finish();

    let mut row_group = c.benchmark_group("dataset");
    row_group.bench_function("observed_feature_row", |b| {
        let mask = [true; 10];
        b.iter(|| black_box(population.observed_row(UserId::new(7), &mask, 1).unwrap().nnz()))
    });
    row_group.finish();
}

criterion_group!(dataset, benches);
criterion_main!(dataset);
