//! E7 bench: regenerates the emotional-context ablation (the paper's
//! central claim) at bench scale and times the two design choices the
//! ablation isolates — emotional-feature masking and the advice-stage
//! activation transform.

use criterion::{criterion_group, criterion_main, Criterion};
use spa_bench::BENCH_USERS;
use spa_campaign::{Experiment, ExperimentConfig};
use spa_core::sum::{SumConfig, SumRegistry};
use spa_linalg::SparseVec;
use spa_types::{AttributeSchema, UserId, Valence};
use std::hint::black_box;

fn regenerate_ablation() {
    let base = ExperimentConfig {
        n_users: BENCH_USERS,
        n_courses: 40,
        n_topics: 8,
        ingest_weblogs: false,
        history_eit_rounds: 15,
        n_training_campaigns: 3,
        ..Default::default()
    };
    let full = Experiment::new(ExperimentConfig { mask_emotional: false, ..base.clone() })
        .unwrap()
        .run()
        .unwrap();
    let masked =
        Experiment::new(ExperimentConfig { mask_emotional: true, ..base }).unwrap().run().unwrap();
    println!("\n=== regenerated E7 ablation at {BENCH_USERS} users ===");
    println!(
        "AUC            : full {:.3}  masked {:.3}  Δ {:+.3}",
        full.auc,
        masked.auc,
        full.auc - masked.auc
    );
    println!(
        "captured @40%  : full {:.3}  masked {:.3}  Δ {:+.3}",
        full.captured_at_40,
        masked.captured_at_40,
        full.captured_at_40 - masked.captured_at_40
    );
}

fn benches(c: &mut Criterion) {
    regenerate_ablation();

    // design-choice micro-benches
    let schema = AttributeSchema::emagister();
    let registry = SumRegistry::new(75, SumConfig::default());
    let user = UserId::new(1);
    registry.with_model(user, |m, config| {
        for i in 0..40u32 {
            m.set_observed(spa_types::AttributeId::new(i), 0.5).unwrap();
        }
        for (o, attr) in schema.emotional_ids().into_iter().enumerate() {
            m.apply_eit_answer(attr, o, Valence::new(0.4), config).unwrap();
        }
    });
    let model = registry.get(user).unwrap();
    let row = model.feature_row();

    let mut group = c.benchmark_group("ablation");
    group.bench_function("advice_row_activation", |b| {
        b.iter(|| black_box(model.advice_row(&schema).unwrap().nnz()))
    });
    group.bench_function("plain_feature_row", |b| b.iter(|| black_box(model.feature_row().nnz())));
    group.bench_function("emotional_mask_projection", |b| {
        b.iter(|| black_box(row.masked(|i| i < 65).nnz()))
    });
    group.bench_function("sparse_row_concat", |b| {
        let other = SparseVec::from_dense(&[1.0; 10]);
        b.iter(|| black_box(row.concat(&other).nnz()))
    });
    group.finish();
}

criterion_group!(ablation, benches);
criterion_main!(ablation);
