//! The ingest write path: single vs sharded, per-event vs batch, with
//! and without write-ahead durability, plus raw WAL framing and replay
//! throughput (20k / 100k events).
//!
//! The stream is a steady-state serving mix — 8 events per user across
//! the LifeLog kinds the pre-processor distills (actions, transactions,
//! ratings, deliveries, opens). The `ingest_batch` benches **prefill**
//! the platform with one pass of the stream during setup and measure a
//! second pass, so the number is the write path itself (routing, WAL
//! framing, stats, model updates), not first-touch model construction;
//! `cold_wal_sharded8_100k` keeps the from-scratch shape for contrast.
//! Outputs are bit-identical across every configuration measured here —
//! `tests/ingest_fastpath.rs` enforces that.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spa_core::platform::{Spa, SpaConfig};
use spa_core::shard::ShardedSpa;
use spa_store::log::LogConfig;
use spa_store::EventLog;
use spa_synth::catalog::CourseCatalog;
use spa_types::{
    ActionId, CampaignId, CourseId, EmotionalAttribute, EventKind, LifeLogEvent, Timestamp, UserId,
};
use std::hint::black_box;
use std::path::PathBuf;

const SHARDS: usize = 8;
const EVENTS_PER_USER: usize = 8;
const CAMPAIGN: CampaignId = CampaignId::new(1);
const APPEAL: [EmotionalAttribute; 1] = [EmotionalAttribute::Hopeful];

/// Steady-state serving mix: every user sees one event of each kind
/// per cycle.
fn mixed_stream(n_events: usize) -> Vec<LifeLogEvent> {
    let users = (n_events / EVENTS_PER_USER).max(1);
    (0..n_events)
        .map(|i| {
            let raw = i as u32;
            let kind = match i % EVENTS_PER_USER {
                0..=2 => EventKind::Action {
                    action: ActionId::new(raw % 984),
                    course: Some(CourseId::new(raw % 25)),
                },
                3 => EventKind::Action { action: ActionId::new(raw % 984), course: None },
                4 => EventKind::Rating {
                    course: CourseId::new(raw % 25),
                    stars: (raw % 5 + 1) as u8,
                },
                5 => EventKind::Transaction {
                    course: CourseId::new(raw % 25),
                    campaign: Some(CAMPAIGN),
                },
                6 => EventKind::MessageDelivered { campaign: CAMPAIGN },
                _ => EventKind::MessageOpened { campaign: CAMPAIGN },
            };
            LifeLogEvent::new(
                UserId::new((i % users) as u32),
                Timestamp::from_millis(i as u64),
                kind,
            )
        })
        .collect()
}

/// Scratch space for the WAL benches: tmpfs when the host has it
/// (`/dev/shm`), so the measurement is the write path itself rather
/// than disk-writeback variance, falling back to the system temp dir.
fn scratch_base() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

fn tmp_root(tag: &str, round: u64) -> PathBuf {
    let root =
        scratch_base().join(format!("spa-bench-ingest-{tag}-{}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Single platform, models prefilled with one pass of `stream`.
fn warm_single(courses: &CourseCatalog, stream: &[LifeLogEvent]) -> Spa {
    let spa = Spa::new(courses, SpaConfig::default());
    spa.register_campaign(CAMPAIGN, &APPEAL);
    spa.ingest_batch(stream.iter()).unwrap();
    spa
}

/// Sharded platform, models prefilled with one pass of `stream`.
fn warm_sharded(courses: &CourseCatalog, stream: &[LifeLogEvent]) -> ShardedSpa {
    let sharded = ShardedSpa::new(courses, SpaConfig::default(), SHARDS).unwrap();
    sharded.register_campaign(CAMPAIGN, &APPEAL);
    sharded.ingest_batch(stream.iter()).unwrap();
    sharded
}

/// WAL-backed sharded platform, models and logs prefilled.
fn warm_sharded_wal(
    courses: &CourseCatalog,
    stream: &[LifeLogEvent],
    tag: &str,
    round: u64,
) -> ShardedSpa {
    let sharded = ShardedSpa::with_log(
        courses,
        SpaConfig::default(),
        SHARDS,
        tmp_root(tag, round),
        LogConfig::default(),
    )
    .unwrap();
    sharded.register_campaign(CAMPAIGN, &APPEAL);
    sharded.ingest_batch(stream.iter()).unwrap();
    sharded.flush().unwrap();
    sharded
}

fn bench_ingest_batch(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    for &n in &[20_000usize, 100_000] {
        let stream = mixed_stream(n);
        let mut group = c.benchmark_group("ingest_batch");
        group.sample_size(20);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("single_{}k", n / 1000), |b| {
            b.iter_batched(
                || warm_single(&courses, &stream),
                |spa| {
                    spa.ingest_batch(stream.iter()).unwrap();
                    spa.stats().actions
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("sharded{SHARDS}_{}k", n / 1000), |b| {
            b.iter_batched(
                || warm_sharded(&courses, &stream),
                |sharded| {
                    sharded.ingest_batch(stream.iter()).unwrap();
                    sharded.stats().actions
                },
                BatchSize::LargeInput,
            )
        });
        // the acceptance bench (100k): durable batch ingest, log + apply
        group.bench_function(format!("wal_sharded{SHARDS}_{}k", n / 1000), |b| {
            let mut round = 0u64;
            b.iter_batched(
                || {
                    round += 1;
                    warm_sharded_wal(&courses, &stream, "batch", round)
                },
                |sharded| {
                    sharded.ingest_batch(stream.iter()).unwrap();
                    sharded.flush().unwrap();
                    sharded.stats().actions
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    // from-scratch contrast: every user's first touch creates a model
    let n = 100_000usize;
    let stream = mixed_stream(n);
    let mut group = c.benchmark_group("ingest_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(format!("cold_wal_sharded{SHARDS}_100k"), |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                let sharded = ShardedSpa::with_log(
                    &courses,
                    SpaConfig::default(),
                    SHARDS,
                    tmp_root("cold", round),
                    LogConfig::default(),
                )
                .unwrap();
                sharded.register_campaign(CAMPAIGN, &APPEAL);
                sharded
            },
            |sharded| {
                sharded.ingest_batch(stream.iter()).unwrap();
                sharded.flush().unwrap();
                sharded.stats().actions
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_ingest_event(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let n = 20_000usize;
    let stream = mixed_stream(n);
    let mut group = c.benchmark_group("ingest_event");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("single_20k", |b| {
        b.iter_batched(
            || warm_single(&courses, &stream),
            |spa| {
                for event in &stream {
                    spa.ingest(event).unwrap();
                }
                spa.stats().actions
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function(format!("wal_sharded{SHARDS}_20k"), |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                warm_sharded_wal(&courses, &stream, "event", round)
            },
            |sharded| {
                for event in &stream {
                    sharded.ingest(event).unwrap();
                }
                sharded.flush().unwrap();
                sharded.stats().actions
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// Raw WAL throughput: the framing + buffered-write path alone, no
/// in-memory apply — where per-frame allocation shows up undiluted.
fn bench_wal_frame(c: &mut Criterion) {
    let n = 100_000usize;
    let stream = mixed_stream(n);
    let mut group = c.benchmark_group("wal_frame");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("append_batch_100k", |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                EventLog::open_default(tmp_root("frame", round)).unwrap()
            },
            |log| {
                log.append_batch(stream.iter()).unwrap();
                log.flush().unwrap();
                log.stats().unwrap().events_appended
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let n = 100_000usize;
    let stream = mixed_stream(n);

    // a fixed on-disk log for raw frame-decode throughput
    let frame_dir = tmp_root("replay-frames", 0);
    {
        let log = EventLog::open_default(&frame_dir).unwrap();
        log.append_batch(stream.iter()).unwrap();
        log.flush().unwrap();
    }
    // and a fixed sharded root for full platform recovery
    let root = tmp_root("replay-root", 0);
    {
        let sharded = ShardedSpa::with_log(
            &courses,
            SpaConfig::default(),
            SHARDS,
            &root,
            LogConfig::default(),
        )
        .unwrap();
        sharded.register_campaign(CAMPAIGN, &APPEAL);
        sharded.ingest_batch(stream.iter()).unwrap();
        sharded.flush().unwrap();
    }

    let mut group = c.benchmark_group("replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("decode_100k", |b| {
        b.iter(|| {
            let iter = EventLog::replay_iter(&frame_dir).unwrap();
            black_box(iter.map(|e| e.unwrap().user.raw() as u64).sum::<u64>())
        })
    });
    group.bench_function(format!("recover_sharded{SHARDS}_100k"), |b| {
        b.iter(|| {
            let campaigns = [(CAMPAIGN, APPEAL.to_vec())];
            let (recovered, report) = ShardedSpa::recover(
                &courses,
                SpaConfig::default(),
                &campaigns,
                &root,
                LogConfig::default(),
            )
            .unwrap();
            black_box((recovered.shard_count(), report.total_events()))
        })
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&frame_dir);
    let _ = std::fs::remove_dir_all(&root);
}

fn cleanup() {
    // bounded sweep of the per-sample WAL trees the batched benches made
    for tag in ["batch", "event", "frame", "cold"] {
        for round in 1..=60u64 {
            let _ = std::fs::remove_dir_all(
                scratch_base()
                    .join(format!("spa-bench-ingest-{tag}-{}-{round}", std::process::id())),
            );
        }
    }
}

fn benches(c: &mut Criterion) {
    bench_ingest_batch(c);
    bench_ingest_event(c);
    bench_wal_frame(c);
    bench_replay(c);
    cleanup();
}

criterion_group!(ingest, benches);
criterion_main!(ingest);
