//! Table 1 bench: regenerates the Four-Branch Model table and times the
//! Gradual-EIT scheduler and branch-score computation.

use criterion::{criterion_group, criterion_main, Criterion};
use spa_core::sum::{SumConfig, SumRegistry};
use spa_core::EitEngine;
use spa_types::four_branch::render_table1;
use spa_types::{AttributeSchema, EventKind, LifeLogEvent, Timestamp, UserId, Valence};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    println!("\n=== regenerated Table 1 ===\n{}", render_table1());

    let engine = EitEngine::standard();
    let schema = AttributeSchema::emagister();
    let registry = SumRegistry::new(75, SumConfig::default());
    // pre-load a user with a spread of answers
    let user = UserId::new(1);
    for round in 0..25u64 {
        let q = engine.next_question(&registry, user);
        let event = LifeLogEvent::new(
            user,
            Timestamp::from_millis(round),
            EventKind::EitAnswer { question: q.id, answer: Valence::new(0.3) },
        );
        engine.ingest(&registry, &schema, &event).unwrap();
    }

    let mut group = c.benchmark_group("table1");
    group.bench_function("next_question", |b| {
        b.iter(|| black_box(engine.next_question(&registry, black_box(user)).id))
    });
    group.bench_function("ingest_answer", |b| {
        let q = engine.next_question(&registry, user).id;
        let event = LifeLogEvent::new(
            user,
            Timestamp::from_millis(0),
            EventKind::EitAnswer { question: q, answer: Valence::new(0.5) },
        );
        b.iter(|| engine.ingest(&registry, &schema, black_box(&event)).unwrap())
    });
    group.bench_function("branch_scores", |b| {
        b.iter(|| black_box(engine.branch_scores(&registry, &schema, user).overall()))
    });
    group.finish();
}

criterion_group!(table1, benches);
criterion_main!(table1);
