//! Fig 6 bench: regenerates the cumulative redemption curve (6a) and
//! the per-campaign predictive scores (6b) at bench scale, then times
//! the dominant pieces — one full campaign execution and the gains-curve
//! computation over a large contact set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spa_bench::BENCH_USERS;
use spa_campaign::report;
use spa_campaign::{CampaignRunner, CampaignSpec, Channel, Experiment, ExperimentConfig};
use spa_core::platform::{Spa, SpaConfig};
use spa_ml::metrics;
use spa_synth::catalog::CourseCatalog;
use spa_synth::{Population, PopulationConfig, ResponseConfig, ResponseModel};
use spa_types::{CampaignId, CourseId, Timestamp};
use std::hint::black_box;

fn regenerate_fig6() {
    let config = ExperimentConfig {
        n_users: BENCH_USERS,
        n_courses: 40,
        n_topics: 8,
        ingest_weblogs: false,
        history_eit_rounds: 15,
        n_training_campaigns: 3,
        ..Default::default()
    };
    let result = Experiment::new(config).expect("config valid").run().expect("experiment runs");
    println!("\n=== regenerated at {BENCH_USERS} users (paper scale: 3,162,069) ===");
    println!("{}", report::render_fig6a(&result.gains, 10));
    println!("{}", report::render_fig6b(&result));
    println!("{}", report::render_summary(&result));
}

fn bench_campaign_execution(c: &mut Criterion) {
    let population =
        Population::generate(PopulationConfig { n_users: BENCH_USERS, ..Default::default() })
            .expect("population generates");
    let courses = CourseCatalog::generate(40, 8, 3).expect("catalog generates");
    let response = ResponseModel::new(ResponseConfig::default())
        .calibrate_mixed(&population, 0.21, 0.2)
        .expect("calibrates");
    let runner = CampaignRunner::new(&population, &response);
    let spec = CampaignSpec {
        id: CampaignId::new(1),
        channel: Channel::Push,
        target_size: 800,
        course: courses.course(CourseId::new(0)).expect("course 0").clone(),
        at: Timestamp::from_millis(0),
        seed: 42,
    };
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("campaign_800_contacts", |b| {
        b.iter_batched(
            || Spa::new(&courses, SpaConfig::default()),
            |spa| {
                let outcome =
                    runner.run(&spa, &spec, |_, _, _| 0.0, |_, _, _| {}).expect("campaign runs");
                black_box(outcome.responses)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_gains_curve(c: &mut Criterion) {
    // a large synthetic contact set, like pooling ten campaigns
    let n = 100_000;
    let mut rng_state = 0x12345u64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (rng_state >> 33) as f64 / (1u64 << 31) as f64
    };
    let scores: Vec<f64> = (0..n).map(|_| next()).collect();
    let labels: Vec<f64> =
        scores.iter().map(|&s| if next() < s * 0.4 { 1.0 } else { -1.0 }).collect();
    let mut group = c.benchmark_group("fig6");
    group.bench_function("gains_curve_100k_contacts", |b| {
        b.iter(|| {
            let curve = metrics::gains_curve(black_box(&labels), black_box(&scores), 100)
                .expect("curve computes");
            black_box(metrics::captured_at(&curve, 0.4))
        })
    });
    group.bench_function("roc_auc_100k_contacts", |b| {
        b.iter(|| black_box(metrics::roc_auc(black_box(&labels), black_box(&scores)).unwrap()))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    regenerate_fig6();
    bench_campaign_execution(c);
    bench_gains_curve(c);
}

criterion_group!(fig6, benches);
criterion_main!(fig6);
