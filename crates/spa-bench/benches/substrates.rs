//! Substrate micro-benches: the hot paths every experiment leans on —
//! Pegasos SVM training/prediction, sparse kernels, the event log and
//! the profile store.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use spa_linalg::{SparseRow, SparseVec};
use spa_ml::svm::{LinearSvm, SvmConfig};
use spa_ml::{Classifier, Dataset, OnlineLearner};
use spa_store::log::{EventLog, LogConfig};
use spa_store::ProfileStore;
use spa_types::{ActionId, EventKind, LifeLogEvent, Timestamp, UserId};
use std::hint::black_box;

fn training_set(n: usize, dim: usize, nnz: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Dataset::new(dim);
    for i in 0..n {
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        let mut idx: Vec<u32> = (0..dim as u32).collect();
        idx.shuffle(&mut rng);
        idx.truncate(nnz);
        idx.sort_unstable();
        let pairs: Vec<(u32, f64)> =
            idx.into_iter().map(|j| (j, y * 0.5 + rng.gen_range(-1.0..1.0))).collect();
        data.push(&SparseVec::from_pairs(dim, pairs).unwrap(), y).unwrap();
    }
    data
}

fn bench_svm(c: &mut Criterion) {
    let data = training_set(5_000, 75, 30, 1);
    let mut group = c.benchmark_group("svm");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("pegasos_fit_5k_x_75", |b| {
        b.iter(|| {
            let mut svm = LinearSvm::new(75, SvmConfig { epochs: 5, ..Default::default() });
            svm.fit(black_box(&data)).unwrap();
            black_box(svm.bias())
        })
    });
    let mut trained = LinearSvm::new(75, SvmConfig::default());
    trained.fit(&data).unwrap();
    let row = data.x.row_vec(0);
    group.throughput(Throughput::Elements(1));
    group.bench_function("decision_function", |b| {
        b.iter(|| black_box(trained.decision_function(black_box(&row)).unwrap()))
    });
    group.bench_function("partial_fit", |b| {
        b.iter(|| trained.partial_fit(black_box(&row), 1.0).unwrap())
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let a = SparseVec::from_pairs(10_000, (0..2_000u32).map(|i| (i * 5, 1.5))).unwrap();
    let b_vec = SparseVec::from_pairs(10_000, (0..2_500u32).map(|i| (i * 4, -0.5))).unwrap();
    let dense = vec![0.25f64; 10_000];
    let mut group = c.benchmark_group("sparse");
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("sparse_sparse_dot_2k_nnz", |b| {
        b.iter(|| black_box(a.dot(black_box(&b_vec))))
    });
    group.bench_function("sparse_dense_dot_2k_nnz", |b| {
        b.iter(|| black_box(a.dot_dense(black_box(&dense))))
    });
    group.bench_function("sparse_axpy_2k_nnz", |b| {
        let mut acc = vec![0.0f64; 10_000];
        b.iter(|| {
            a.add_scaled_into(1.0e-6, &mut acc);
            black_box(acc[0])
        })
    });
    group.finish();
}

fn bench_event_log(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("spa-bench-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log = EventLog::open(&dir, LogConfig::default()).unwrap();
    let event = LifeLogEvent::new(
        UserId::new(7),
        Timestamp::from_millis(3),
        EventKind::Action { action: ActionId::new(11), course: None },
    );
    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(1));
    group.bench_function("event_log_append", |b| b.iter(|| log.append(black_box(&event)).unwrap()));
    group.finish();

    // replay throughput over a fixed 50k-event log
    let replay_dir = std::env::temp_dir().join(format!("spa-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&replay_dir);
    {
        let log = EventLog::open(&replay_dir, LogConfig::default()).unwrap();
        for i in 0..50_000u32 {
            log.append(&LifeLogEvent::new(
                UserId::new(i),
                Timestamp::from_millis(i as u64),
                EventKind::Action { action: ActionId::new(i % 984), course: None },
            ))
            .unwrap();
        }
        log.flush().unwrap();
    }
    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("event_log_replay_50k", |b| {
        b.iter(|| black_box(EventLog::replay_dir(&replay_dir).unwrap().len()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&replay_dir);
}

fn bench_profile_store(c: &mut Criterion) {
    let store = ProfileStore::new(75);
    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(1));
    group.bench_function("profile_update", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            store.update(UserId::new(i % 10_000), Timestamp::from_millis(0), |v| v[0] += 1.0);
        })
    });
    group.bench_function("profile_get", |b| {
        b.iter(|| black_box(store.get(UserId::new(123)).map(|p| p.updates)))
    });
    group.finish();
}

/// Row access: the old owned-clone path (`row_vec`) versus the
/// zero-copy `RowView` path, scoring every row of a 20k×75 matrix
/// against a dense weight vector. The delta is exactly the per-row
/// allocation cost the RowView refactor removed.
fn bench_row_access(c: &mut Criterion) {
    let data = training_set(20_000, 75, 30, 7);
    let weights = vec![0.125f64; 75];
    let mut group = c.benchmark_group("row_access");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("row_vec_dot_20k (owned clone per row)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..data.len() {
                acc += data.x.row_vec(r).dot_dense(&weights);
            }
            black_box(acc)
        })
    });
    group.bench_function("row_view_dot_20k (zero-copy)", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..data.len() {
                acc += data.x.row(r).dot_dense(&weights);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Batch scoring: serial versus parallel `decision_batch` at 20k and
/// 100k rows (the paper's per-campaign workload is 1.34M). On a
/// multi-core host the parallel path should approach core-count
/// speedup; outputs are bit-identical either way.
fn bench_decision_batch(c: &mut Criterion) {
    for &n in &[20_000usize, 100_000] {
        let data = training_set(n, 75, 30, 11);
        let mut svm = LinearSvm::new(75, SvmConfig::default());
        svm.fit(&data).unwrap();
        let mut group = c.benchmark_group("decision_batch");
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("serial_{}k", n / 1000), |b| {
            b.iter(|| black_box(svm.decision_batch_serial(&data).unwrap().len()))
        });
        group.bench_function(
            format!("parallel_{}k_{}threads", n / 1000, rayon::current_num_threads()),
            |b| b.iter(|| black_box(svm.decision_batch(&data).unwrap().len())),
        );
        group.finish();
    }
}

fn benches(c: &mut Criterion) {
    bench_svm(c);
    bench_sparse(c);
    bench_row_access(c);
    bench_decision_batch(c);
    bench_event_log(c);
    bench_profile_store(c);
}

criterion_group!(substrates, benches);
criterion_main!(substrates);
