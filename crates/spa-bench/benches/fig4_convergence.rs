//! Fig 4 bench: regenerates the iterative emotional-attribute discovery
//! loop (coverage/fidelity over EIT rounds) and times one full EIT
//! contact round plus the reward/punish update path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spa_core::platform::{Spa, SpaConfig};
use spa_synth::catalog::CourseCatalog;
use spa_synth::eit::AnswerSimulator;
use spa_synth::{Population, PopulationConfig};
use spa_types::{CampaignId, EmotionalAttribute, EventKind, LifeLogEvent, Timestamp};
use std::hint::black_box;

fn regenerate_fig4() {
    let n_users = 1_000;
    let population =
        Population::generate(PopulationConfig { n_users, ..Default::default() }).unwrap();
    let courses = CourseCatalog::generate(20, 4, 5).unwrap();
    let spa = Spa::new(&courses, SpaConfig::default());
    let sim = AnswerSimulator::default();
    println!("\n=== regenerated Fig 4 convergence (coverage / fidelity by round) ===");
    for round in 0..18u64 {
        for user in population.users() {
            let q = spa.next_eit_question(user.id);
            let e = sim.react(user, q.id, q.target, round, Timestamp::from_millis(round));
            spa.ingest(&e).unwrap();
        }
        if round % 6 == 5 {
            let ids = spa.schema().emotional_ids();
            let mut observed = 0usize;
            let mut est = Vec::new();
            let mut truth = Vec::new();
            for user in population.users() {
                if let Some(m) = spa.registry().get(user.id) {
                    for (o, &attr) in ids.iter().enumerate() {
                        if m.relevance(attr) > 0.0 {
                            observed += 1;
                            est.push(m.value(attr));
                            truth.push(user.emotional[o]);
                        }
                    }
                }
            }
            println!(
                "round {:>2}: coverage {:>5.1}%  fidelity r = {:.3}",
                round + 1,
                100.0 * observed as f64 / (n_users * 10) as f64,
                spa_linalg::stats::correlation(&est, &truth)
            );
        }
    }
    println!();
}

fn bench_eit_round(c: &mut Criterion) {
    let population =
        Population::generate(PopulationConfig { n_users: 1_000, ..Default::default() }).unwrap();
    let courses = CourseCatalog::generate(20, 4, 5).unwrap();
    let sim = AnswerSimulator::default();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("eit_contact_round_1000_users", |b| {
        b.iter_batched(
            || Spa::new(&courses, SpaConfig::default()),
            |spa| {
                for user in population.users() {
                    let q = spa.next_eit_question(user.id);
                    let e = sim.react(user, q.id, q.target, 0, Timestamp::from_millis(0));
                    spa.ingest(&e).unwrap();
                }
                black_box(spa.stats().eit_answers)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_reward_punish(c: &mut Criterion) {
    let courses = CourseCatalog::generate(20, 4, 5).unwrap();
    let spa = Spa::new(&courses, SpaConfig::default());
    let campaign = CampaignId::new(1);
    spa.register_campaign(campaign, &[EmotionalAttribute::Hopeful, EmotionalAttribute::Lively]);
    let user = spa_types::UserId::new(1);
    let open =
        LifeLogEvent::new(user, Timestamp::from_millis(0), EventKind::MessageOpened { campaign });
    let mut group = c.benchmark_group("fig4");
    group.bench_function("reward_open_event", |b| b.iter(|| spa.ingest(black_box(&open)).unwrap()));
    group.bench_function("punish_ignored", |b| {
        b.iter(|| spa.punish_ignored(black_box(user), black_box(campaign)))
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    regenerate_fig4();
    bench_eit_round(c);
    bench_reward_punish(c);
}

criterion_group!(fig4, benches);
criterion_main!(fig4);
