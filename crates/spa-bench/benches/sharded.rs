//! Sharded vs single-platform serving: ingest fan-out, batch scoring
//! and crash-recovery replay at campaign scale (20k / 100k users).
//!
//! The sharded numbers approach `shards × single` throughput on a
//! multi-core host; on one core they track the single-platform path
//! (the fan-out takes the serial branch). Outputs are bit-identical
//! either way — `tests/shard_equivalence.rs` enforces that.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spa_core::platform::{Spa, SpaConfig};
use spa_core::shard::ShardedSpa;
use spa_ml::Dataset;
use spa_store::log::LogConfig;
use spa_synth::catalog::CourseCatalog;
use spa_types::{ActionId, CourseId, EventKind, LifeLogEvent, Timestamp, UserId};
use std::hint::black_box;

const SHARDS: usize = 8;

fn action_stream(n_users: usize) -> Vec<LifeLogEvent> {
    (0..n_users as u32)
        .map(|raw| {
            LifeLogEvent::new(
                UserId::new(raw),
                Timestamp::from_millis(raw as u64),
                EventKind::Action {
                    action: ActionId::new(raw % 984),
                    course: Some(CourseId::new(raw % 25)),
                },
            )
        })
        .collect()
}

fn bench_ingest(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    for &n in &[20_000usize, 100_000] {
        let stream = action_stream(n);
        let mut group = c.benchmark_group("sharded_ingest");
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("single_{}k", n / 1000), |b| {
            b.iter_batched(
                || Spa::new(&courses, SpaConfig::default()),
                |spa| {
                    spa.ingest_batch(stream.iter()).unwrap();
                    spa.stats().actions
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(format!("sharded{SHARDS}_{}k", n / 1000), |b| {
            b.iter_batched(
                || ShardedSpa::new(&courses, SpaConfig::default(), SHARDS).unwrap(),
                |sharded| {
                    sharded.ingest_batch(stream.iter()).unwrap();
                    sharded.stats().actions
                },
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }
}

fn bench_score(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    for &n in &[20_000usize, 100_000] {
        let stream = action_stream(n);
        let users: Vec<UserId> = (0..n as u32).map(UserId::new).collect();

        let mut single = Spa::new(&courses, SpaConfig::default());
        single.ingest_batch(stream.iter()).unwrap();
        let sharded = ShardedSpa::new(&courses, SpaConfig::default(), SHARDS).unwrap();
        sharded.ingest_batch(stream.iter()).unwrap();

        // one labelled example per 10th user, split by topic slot
        let mut data = Dataset::new(75);
        for &user in users.iter().step_by(10) {
            let row = single.advice_row(user).unwrap();
            data.push(&row, if user.raw() % 2 == 0 { 1.0 } else { -1.0 }).unwrap();
        }
        single.train_selection(&data).unwrap();
        sharded.train_selection(&data).unwrap();

        let mut group = c.benchmark_group("sharded_score");
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("single_{}k", n / 1000), |b| {
            b.iter(|| black_box(single.score_users(&users).unwrap().len()))
        });
        group.bench_function(format!("sharded{SHARDS}_{}k", n / 1000), |b| {
            b.iter(|| black_box(sharded.score_users(&users).unwrap().len()))
        });
        group.bench_function(format!("single_rank_{}k", n / 1000), |b| {
            b.iter(|| black_box(single.rank_users(&users).unwrap().len()))
        });
        group.bench_function(format!("sharded{SHARDS}_rank_{}k", n / 1000), |b| {
            b.iter(|| black_box(sharded.rank(&users).unwrap().len()))
        });
        // Fig-6 "contact the top fraction": top-10% selection without
        // the full audience sort
        group.bench_function(format!("single_top10_{}k", n / 1000), |b| {
            b.iter(|| black_box(single.rank_top_k(&users, n / 10).unwrap().len()))
        });
        group.bench_function(format!("sharded{SHARDS}_top10_{}k", n / 1000), |b| {
            b.iter(|| black_box(sharded.rank_top_k(&users, n / 10).unwrap().len()))
        });
        group.finish();
    }
}

fn bench_durability(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let n = 20_000usize;
    let stream = action_stream(n);

    // write-ahead-logged ingest (log recreated per sample)
    let mut group = c.benchmark_group("sharded_durability");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(format!("wal_ingest_sharded{SHARDS}_20k"), |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                let root = std::env::temp_dir()
                    .join(format!("spa-bench-wal-{}-{round}", std::process::id()));
                let _ = std::fs::remove_dir_all(&root);
                ShardedSpa::with_log(
                    &courses,
                    SpaConfig::default(),
                    SHARDS,
                    root,
                    LogConfig::default(),
                )
                .unwrap()
            },
            |sharded| {
                sharded.ingest_batch(stream.iter()).unwrap();
                sharded.flush().unwrap();
                sharded.stats().actions
            },
            BatchSize::LargeInput,
        )
    });

    // recovery replay over a fixed on-disk log set
    let root = std::env::temp_dir().join(format!("spa-bench-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    {
        let sharded = ShardedSpa::with_log(
            &courses,
            SpaConfig::default(),
            SHARDS,
            &root,
            LogConfig::default(),
        )
        .unwrap();
        sharded.ingest_batch(stream.iter()).unwrap();
        sharded.flush().unwrap();
    }
    group.bench_function(format!("recover_sharded{SHARDS}_20k"), |b| {
        b.iter(|| {
            let (recovered, report) = ShardedSpa::recover(
                &courses,
                SpaConfig::default(),
                &[],
                &root,
                LogConfig::default(),
            )
            .unwrap();
            black_box((recovered.shard_count(), report.total_events()))
        })
    });
    group.finish();

    // clean up the bench's temp trees
    let _ = std::fs::remove_dir_all(&root);
    for round in 1..=20u64 {
        let _ = std::fs::remove_dir_all(
            std::env::temp_dir().join(format!("spa-bench-wal-{}-{round}", std::process::id())),
        );
    }
}

fn benches(c: &mut Criterion) {
    bench_ingest(c);
    bench_score(c);
    bench_durability(c);
}

criterion_group!(sharded, benches);
criterion_main!(sharded);
