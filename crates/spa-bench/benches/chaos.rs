//! Chaos machinery overhead: the lifecycle scenario generator and the
//! storage fault seam.
//!
//! Two questions the chaos soak raises about production cost:
//!
//! 1. **Scenario generation** — how fast does [`ScenarioEngine`] emit
//!    its production-weather stream (Zipf hot set, cohort churn,
//!    valence drift, staggered campaigns)? The soak interleaves
//!    generation with serving, so generation must be far from the
//!    bottleneck.
//! 2. **Fault-seam tax** — every WAL byte now flows through the
//!    [`StorageIo`] trait object so a [`FaultPlan`] *could* be wired
//!    in. The `wal_append` group measures the same append stream
//!    against the real seam (`EventLog::open`), a disarmed plan
//!    (seam consulted, injection declined), and an armed-but-silent
//!    plan (probabilities all zero, full dice path). The spread
//!    between them is the price of making every write injectable.
//!
//! Run with `cargo bench -p spa-bench --bench chaos`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use spa_store::fault::{FaultPlan, FaultPlanConfig};
use spa_store::log::LogConfig;
use spa_store::EventLog;
use spa_synth::{ScenarioEngine, ScenarioSpec};
use spa_types::LifeLogEvent;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

/// Tmpfs when available so the seam comparison is not drowned in disk
/// writeback variance.
fn scratch_base() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

fn tmp_dir(tag: &str, round: u64) -> PathBuf {
    let dir = scratch_base().join(format!("spa-bench-chaos-{tag}-{}-{round}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A silent plan: armed, dice rolled on every operation, but every
/// probability is zero so nothing ever fires. Upper bound on the
/// seam's per-operation cost.
fn silent_plan() -> Arc<FaultPlan> {
    let plan = Arc::new(FaultPlan::seeded(FaultPlanConfig {
        seed: 0xBE_AC47,
        torn_write_per_10k: 0,
        transient_eio_per_10k: 0,
        transient_burst_max: 0,
        fsync_failure_per_10k: 0,
        read_rot_per_10k: 0,
    }));
    plan.set_armed(true);
    plan
}

/// One production-weather stream, fully materialised.
fn weather_events(seed: u64, ticks: u32) -> Vec<LifeLogEvent> {
    let engine = ScenarioEngine::new(ScenarioSpec::production_weather(seed, ticks)).unwrap();
    engine.flat_map(|tick| tick.events).collect()
}

fn bench_scenario_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_gen");
    for &ticks in &[256u32, 1024] {
        let n_events = weather_events(7, ticks).len();
        group.throughput(Throughput::Elements(n_events as u64));
        group.bench_function(format!("production_weather_{ticks}t"), |b| {
            b.iter(|| {
                let mut events = 0usize;
                let engine =
                    ScenarioEngine::new(ScenarioSpec::production_weather(7, ticks)).unwrap();
                for tick in engine {
                    events += tick.events.len();
                }
                black_box(events)
            })
        });
    }
    group.finish();
}

fn bench_fault_seam(c: &mut Criterion) {
    const N: usize = 20_000;
    let stream = weather_events(11, 512);
    let stream: Vec<LifeLogEvent> = stream.into_iter().cycle().take(N).collect();
    let config = LogConfig { segment_bytes: 1 << 20, fsync: false };

    let mut group = c.benchmark_group("wal_append");
    group.sample_size(20);
    group.throughput(Throughput::Elements(N as u64));

    let mut round = 0u64;
    group.bench_function("real_io_20k", |b| {
        b.iter_batched(
            || {
                round += 1;
                EventLog::open(tmp_dir("real", round), config.clone()).unwrap()
            },
            |log| {
                log.append_batch(stream.iter()).unwrap();
                log.flush().unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("disarmed_plan_20k", |b| {
        b.iter_batched(
            || {
                round += 1;
                let plan = Arc::new(FaultPlan::seeded(FaultPlanConfig::default()));
                EventLog::open_with_io(tmp_dir("disarmed", round), config.clone(), plan).unwrap()
            },
            |log| {
                log.append_batch(stream.iter()).unwrap();
                log.flush().unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("armed_silent_plan_20k", |b| {
        b.iter_batched(
            || {
                round += 1;
                EventLog::open_with_io(tmp_dir("silent", round), config.clone(), silent_plan())
                    .unwrap()
            },
            |log| {
                log.append_batch(stream.iter()).unwrap();
                log.flush().unwrap();
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    for tag in ["real", "disarmed", "silent"] {
        for r in 0..=round {
            let _ = std::fs::remove_dir_all(tmp_dir(tag, r));
        }
    }
}

fn benches(c: &mut Criterion) {
    bench_scenario_gen(c);
    bench_fault_seam(c);
}

criterion_group!(chaos, benches);
criterion_main!(chaos);
