//! Bounded-time recovery: restart cost vs history length, with and
//! without a snapshot checkpoint.
//!
//! The claim under test (ISSUE 4 acceptance): full-replay recovery time
//! grows with the event history, while snapshot + tail-replay recovery
//! is independent of how much history lies *behind* the checkpoint —
//! the restart pays O(live state + tail), not O(events ever ingested).
//! Also measures what the checkpoint itself costs (serialize + fsync +
//! rename per shard) and what compaction reclaims.
//!
//! Run: `cargo bench -p spa-bench --bench recovery`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spa_core::platform::SpaConfig;
use spa_core::shard::ShardedSpa;
use spa_store::log::LogConfig;
use spa_store::{EventLog, ShardedEventLog};
use spa_synth::catalog::CourseCatalog;
use spa_types::{ActionId, CourseId, EventKind, LifeLogEvent, ShardId, Timestamp, UserId};
use std::hint::black_box;
use std::path::{Path, PathBuf};

const SHARDS: usize = 8;
/// Small segments so histories span many files and compaction /
/// tail-skipping are exercised for real.
fn log_config() -> LogConfig {
    LogConfig { segment_bytes: 256 * 1024, fsync: false }
}

/// Many events per user (5 000 distinct users): recovery cost is then
/// dominated by history length for full replay but by live-state size
/// for snapshot loading — the contrast under test.
fn action_stream(n: usize, base: u64) -> Vec<LifeLogEvent> {
    (0..n as u32)
        .map(|raw| {
            LifeLogEvent::new(
                UserId::new(raw % 5_000),
                Timestamp::from_millis(base + raw as u64),
                EventKind::Action {
                    action: ActionId::new(raw % 984),
                    course: Some(CourseId::new(raw % 25)),
                },
            )
        })
        .collect()
}

fn fresh_root(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("spa-bench-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}

/// History of `n` events, no checkpoint: recovery must replay it all.
fn prepare_full(courses: &CourseCatalog, n: usize, tag: &str) -> PathBuf {
    let root = fresh_root(tag);
    let platform =
        ShardedSpa::with_log(courses, SpaConfig::default(), SHARDS, &root, log_config()).unwrap();
    platform.ingest_batch(action_stream(n, 0).iter()).unwrap();
    platform.flush().unwrap();
    root
}

/// History of `n` events behind a checkpoint (compacted), plus a fixed
/// 1 000-event tail: recovery loads the snapshot and replays the tail.
fn prepare_snapshot(courses: &CourseCatalog, n: usize, tag: &str) -> PathBuf {
    let root = fresh_root(tag);
    let platform =
        ShardedSpa::with_log(courses, SpaConfig::default(), SHARDS, &root, log_config()).unwrap();
    platform.ingest_batch(action_stream(n, 0).iter()).unwrap();
    platform.checkpoint().unwrap();
    platform.compact().unwrap();
    platform.ingest_batch(action_stream(1_000, n as u64).iter()).unwrap();
    platform.flush().unwrap();
    root
}

fn bench_recovery_time(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let mut group = c.benchmark_group("recovery_time");
    group.sample_size(10);
    for &n in &[20_000usize, 100_000] {
        let full_root = prepare_full(&courses, n, &format!("full-{n}"));
        group.bench_function(format!("full_replay_{}k", n / 1000), |b| {
            b.iter(|| {
                let (platform, report) = ShardedSpa::recover(
                    &courses,
                    SpaConfig::default(),
                    &[],
                    &full_root,
                    log_config(),
                )
                .unwrap();
                black_box((platform.shard_count(), report.total_events()))
            })
        });
        let snap_root = prepare_snapshot(&courses, n, &format!("snap-{n}"));
        group.bench_function(format!("snapshot_tail_{}k", n / 1000), |b| {
            b.iter(|| {
                let (platform, report) = ShardedSpa::recover(
                    &courses,
                    SpaConfig::default(),
                    &[],
                    &snap_root,
                    log_config(),
                )
                .unwrap();
                black_box((platform.shard_count(), report.total_events()))
            })
        });
        let _ = std::fs::remove_dir_all(&full_root);
        let _ = std::fs::remove_dir_all(&snap_root);
    }
    group.finish();
}

fn bench_checkpoint_and_compaction(c: &mut Criterion) {
    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let n = 20_000usize;
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);

    // checkpoint cost over a live 20k-event platform (re-checkpointing
    // the same position rewrites the same snapshot files atomically —
    // the steady-state cost of a periodic checkpoint on a quiet shard)
    let root = fresh_root("ckpt-live");
    let platform =
        ShardedSpa::with_log(&courses, SpaConfig::default(), SHARDS, &root, log_config()).unwrap();
    platform.ingest_batch(action_stream(n, 0).iter()).unwrap();
    group.bench_function("checkpoint_20k", |b| {
        b.iter(|| black_box(platform.checkpoint().unwrap().snapshot_bytes))
    });
    drop(platform);

    // compaction cost: template root with a registered checkpoint and
    // several covered segments; each iteration compacts a fresh copy
    let template = fresh_root("compact-template");
    {
        let platform =
            ShardedSpa::with_log(&courses, SpaConfig::default(), SHARDS, &template, log_config())
                .unwrap();
        platform.ingest_batch(action_stream(n, 0).iter()).unwrap();
        platform.checkpoint().unwrap();
    }
    let scratch = fresh_root("compact-scratch");
    let mut round = 0u64;
    group.bench_function("compact_after_checkpoint_20k", |b| {
        b.iter_batched(
            || {
                round += 1;
                let copy = scratch.join(round.to_string());
                copy_dir(&template, &copy);
                copy
            },
            |copy| {
                // storage-level compaction (no platform rebuild): delete
                // covered segments + prune superseded snapshots per shard
                let registered = ShardedEventLog::registered_snapshots(&copy).unwrap();
                let mut reclaimed = 0u64;
                for (index, position) in registered.iter().enumerate() {
                    if let Some(position) = position {
                        let dir = ShardedEventLog::shard_path(&copy, ShardId::new(index as u32));
                        reclaimed +=
                            EventLog::compact_dir_before(&dir, *position).unwrap().bytes_reclaimed;
                    }
                }
                black_box(reclaimed)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&template);
    let _ = std::fs::remove_dir_all(&scratch);
}

fn benches(c: &mut Criterion) {
    bench_recovery_time(c);
    bench_checkpoint_and_compaction(c);
}

criterion_group!(recovery, benches);
criterion_main!(recovery);
