//! Campaign execution.
//!
//! One campaign, per §5.2–§5.4:
//!
//! 1. a random target audience is drawn from the population (the paper
//!    targeted 1,340,432 random users per campaign);
//! 2. every targeted user receives **one Gradual-EIT question** with the
//!    contact ("only one question every time that push or newsletters
//!    are received") — answers flow back into the SUM;
//! 3. the Messaging Agent assigns each user an individualized message
//!    for the campaign's course (§5.3);
//! 4. the user responds or not according to the latent
//!    [`ResponseModel`] — a response is a *useful impact* (transaction);
//! 5. outcomes feed back as LifeLog events: opens reward the appealed
//!    attributes, ignored messages punish them (Fig 4), and the
//!    selection model can be updated incrementally.

use rand::prelude::*;
use rand::rngs::StdRng;
use spa_core::messaging::AssignedMessage;
use spa_core::platform::Spa;
use spa_synth::catalog::Course;
use spa_synth::{Population, ResponseModel};
use spa_types::{
    CampaignId, EmotionalAttribute, EventKind, LifeLogEvent, Result, SpaError, Timestamp, UserId,
};

/// Delivery channel (metadata; both behave identically in the response
/// model, matching the paper's pooled analysis of the ten campaigns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Push notification.
    Push,
    /// E-mail newsletter.
    Newsletter,
}

impl Channel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Channel::Push => "push",
            Channel::Newsletter => "newsletter",
        }
    }
}

/// Specification of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Identifier.
    pub id: CampaignId,
    /// Channel.
    pub channel: Channel,
    /// Number of users to target (drawn uniformly at random).
    pub target_size: usize,
    /// Course being promoted (its `appeal` drives the sales talk).
    pub course: Course,
    /// Simulated send time.
    pub at: Timestamp,
    /// Seed for audience sampling.
    pub seed: u64,
}

/// Per-user record of one contact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactRecord {
    /// Contacted user.
    pub user: UserId,
    /// Selection-function score at send time (NaN when the model was
    /// untrained — training campaigns).
    pub score: f64,
    /// Emotional attribute of the assigned message (`None` = standard).
    pub appeal: Option<EmotionalAttribute>,
    /// Whether the user transacted (a useful impact).
    pub responded: bool,
}

/// Aggregate outcome of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The spec that ran.
    pub id: CampaignId,
    /// Channel.
    pub channel: Channel,
    /// Per-contact records (one per targeted user).
    pub contacts: Vec<ContactRecord>,
    /// Useful impacts (responses).
    pub responses: usize,
}

impl CampaignOutcome {
    /// The paper's **predictive score**: useful impacts over targets.
    pub fn predictive_score(&self) -> f64 {
        if self.contacts.is_empty() {
            0.0
        } else {
            self.responses as f64 / self.contacts.len() as f64
        }
    }
}

/// Executes campaigns against a platform + latent population.
pub struct CampaignRunner<'a> {
    population: &'a Population,
    response: &'a ResponseModel,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner.
    pub fn new(population: &'a Population, response: &'a ResponseModel) -> Self {
        Self { population, response }
    }

    /// Draws the random audience for a spec.
    pub fn draw_audience(&self, spec: &CampaignSpec) -> Vec<UserId> {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.id.raw() as u64);
        let n = self.population.len();
        let target = spec.target_size.min(n);
        rand::seq::index::sample(&mut rng, n, target)
            .into_iter()
            .map(|i| UserId::new(i as u32))
            .collect()
    }

    /// The Fig-6 deployment shape: draw the spec's random candidate
    /// audience, then keep only the top `fraction` by trained
    /// propensity ("the effort to send Push and newsletters", Fig 6a —
    /// the platform contacts the best slice, not everyone). Selection
    /// goes through [`Spa::rank_top_k`], so the candidate pool is
    /// scored once and never fully sorted; the contacted set is
    /// identical to ranking everything and taking the head.
    pub fn draw_targeted_audience(
        &self,
        spa: &Spa,
        spec: &CampaignSpec,
        fraction: f64,
    ) -> Result<Vec<UserId>> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(SpaError::Invalid(format!("fraction {fraction} out of [0,1]")));
        }
        let candidates = self.draw_audience(spec);
        let k = ((candidates.len() as f64) * fraction).round() as usize;
        Ok(spa.rank_top_k(&candidates, k)?.into_iter().map(|(user, _)| user).collect())
    }

    /// Runs one campaign serially. `score_user` supplies the
    /// selection-function score recorded per contact (pass a constant
    /// for untrained runs); it also receives the message the platform
    /// is about to send — known before the response, so legitimate
    /// scoring input. `update_model` receives each outcome for
    /// incremental learning (the reason this path stays serial: online
    /// updates are order-dependent).
    pub fn run(
        &self,
        spa: &Spa,
        spec: &CampaignSpec,
        mut score_user: impl FnMut(&Spa, UserId, &AssignedMessage) -> f64,
        mut update_model: impl FnMut(&Spa, UserId, bool),
    ) -> Result<CampaignOutcome> {
        if spec.course.appeal.is_empty() {
            return Err(SpaError::Invalid("campaign course has no appeal attributes".into()));
        }
        spa.register_campaign(spec.id, &spec.course.appeal);
        let audience = self.draw_audience(spec);
        let mut contacts = Vec::with_capacity(audience.len());
        let mut responses = 0usize;
        for (k, user) in audience.into_iter().enumerate() {
            let (record, ()) = self.contact(spa, spec, k, user, |spa, user, message| {
                (score_user(spa, user, message), ())
            })?;
            responses += record.responded as usize;
            update_model(spa, user, record.responded);
            contacts.push(record);
        }
        Ok(CampaignOutcome { id: spec.id, channel: spec.channel, contacts, responses })
    }

    /// Runs one campaign with contacts fanned out across threads
    /// (`parallel` feature; falls back to a serial loop without it),
    /// collecting an extra per-contact payload from the hook.
    ///
    /// Contacts of one campaign touch *distinct* users (the audience is
    /// sampled without replacement), every SUM mutation is per-user
    /// behind the sharded registry locks, and the response draw is
    /// keyed by `(campaign, contact index)` — so contacts are
    /// independent and the outcome is **byte-identical at any thread
    /// count**, including 1. The hook sees the contact index `k` and
    /// must be a pure function of the platform state for its user.
    ///
    /// Incremental model updates don't fit this shape (they are
    /// order-dependent across users); use [`Self::run`] for those.
    pub fn run_collect<T: Send>(
        &self,
        spa: &Spa,
        spec: &CampaignSpec,
        contact_hook: impl Fn(&Spa, UserId, &AssignedMessage) -> (f64, T) + Sync,
    ) -> Result<(CampaignOutcome, Vec<T>)> {
        if spec.course.appeal.is_empty() {
            return Err(SpaError::Invalid("campaign course has no appeal attributes".into()));
        }
        spa.register_campaign(spec.id, &spec.course.appeal);
        let audience = self.draw_audience(spec);
        let results: Vec<Result<(ContactRecord, T)>>;
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            results = (0..audience.len())
                .into_par_iter()
                .map(|k| self.contact(spa, spec, k, audience[k], &contact_hook))
                .collect();
        }
        #[cfg(not(feature = "parallel"))]
        {
            results = (0..audience.len())
                .map(|k| self.contact(spa, spec, k, audience[k], &contact_hook))
                .collect();
        }
        let mut contacts = Vec::with_capacity(results.len());
        let mut payloads = Vec::with_capacity(results.len());
        let mut responses = 0usize;
        for result in results {
            let (record, payload) = result?;
            responses += record.responded as usize;
            contacts.push(record);
            payloads.push(payload);
        }
        Ok((CampaignOutcome { id: spec.id, channel: spec.channel, contacts, responses }, payloads))
    }

    /// One contact: delivery, the contact's single EIT question, message
    /// assignment, scoring, latent response draw and reward/punish
    /// feedback. Touches only `user`'s state, so contacts of distinct
    /// users commute.
    fn contact<T>(
        &self,
        spa: &Spa,
        spec: &CampaignSpec,
        k: usize,
        user: UserId,
        contact_hook: impl FnOnce(&Spa, UserId, &AssignedMessage) -> (f64, T),
    ) -> Result<(ContactRecord, T)> {
        let latent =
            self.population.user(user).ok_or_else(|| SpaError::NotFound(format!("user {user}")))?;

        // contact: delivery + the one EIT question of this contact
        spa.ingest(&LifeLogEvent::new(
            user,
            spec.at,
            EventKind::MessageDelivered { campaign: spec.id },
        ))?;
        let question = spa.next_eit_question(user);
        let eit_event = spa_synth::eit::AnswerSimulator::default().react(
            latent,
            question.id,
            question.target,
            spec.id.raw() as u64,
            spec.at,
        );
        spa.ingest(&eit_event)?;

        // individualized message (§5.3)
        let message = spa.assign_message(user, &spec.course.appeal)?;
        let (score, payload) = contact_hook(spa, user, &message);

        // latent response draw
        let contact_key = (spec.id.raw() as u64) << 32 | k as u64;
        let responded = self.response.responds(latent, message.attribute, contact_key);
        if responded {
            spa.ingest(&LifeLogEvent::new(
                user,
                spec.at.plus_millis(60_000),
                EventKind::MessageOpened { campaign: spec.id },
            ))?;
            spa.ingest(&LifeLogEvent::new(
                user,
                spec.at.plus_millis(120_000),
                EventKind::Transaction { course: spec.course.id, campaign: Some(spec.id) },
            ))?;
        } else {
            spa.punish_ignored(user, spec.id);
        }
        Ok((ContactRecord { user, score, appeal: message.attribute, responded }, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_core::platform::SpaConfig;
    use spa_synth::catalog::CourseCatalog;
    use spa_synth::{PopulationConfig, ResponseConfig};

    fn setup() -> (Population, ResponseModel, CourseCatalog, Spa) {
        let population =
            Population::generate(PopulationConfig { n_users: 800, ..Default::default() }).unwrap();
        let response = ResponseModel::new(ResponseConfig::default())
            .calibrate_mixed(&population, 0.21, 0.2)
            .unwrap();
        let courses = CourseCatalog::generate(20, 5, 4).unwrap();
        let spa = Spa::new(&courses, SpaConfig::default());
        (population, response, courses, spa)
    }

    fn spec(courses: &CourseCatalog, id: u32, size: usize) -> CampaignSpec {
        CampaignSpec {
            id: CampaignId::new(id),
            channel: if id.is_multiple_of(5) { Channel::Newsletter } else { Channel::Push },
            target_size: size,
            course: courses.course(spa_types::CourseId::new(id % 20)).unwrap().clone(),
            at: Timestamp::from_millis(id as u64 * 1000),
            seed: 0xCAFE,
        }
    }

    #[test]
    fn audience_is_random_but_deterministic() {
        let (population, response, courses, _) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let s = spec(&courses, 1, 300);
        let a = runner.draw_audience(&s);
        let b = runner.draw_audience(&s);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 300, "sampling without replacement");
        let s2 = spec(&courses, 2, 300);
        assert_ne!(runner.draw_audience(&s2), a, "different campaigns draw differently");
    }

    #[test]
    fn targeted_audience_is_the_ranked_prefix() {
        let (population, response, courses, mut spa) = setup();
        let runner = CampaignRunner::new(&population, &response);
        // build differentiated user models + a trained selection
        let warmup = spec(&courses, 8, 400);
        runner.run(&spa, &warmup, |_, _, _| 0.0, |_, _, _| {}).unwrap();
        let mut data = spa_ml::Dataset::new(75);
        for raw in (0..800u32).step_by(4) {
            let row = spa.advice_row(UserId::new(raw)).unwrap();
            let label = if row.get(65) > 0.4 { 1.0 } else { -1.0 };
            data.push(&row, label).unwrap();
        }
        spa.train_selection(&data).unwrap();

        let s = spec(&courses, 9, 500);
        let targeted = runner.draw_targeted_audience(&spa, &s, 0.3).unwrap();
        let candidates = runner.draw_audience(&s);
        let ranked = spa.rank_users(&candidates).unwrap();
        let expected: Vec<UserId> =
            ranked[..targeted.len()].iter().map(|&(user, _)| user).collect();
        assert_eq!(targeted.len(), 150, "30% of 500 candidates");
        assert_eq!(targeted, expected, "top-k must equal the full-ranking prefix");
        assert!(runner.draw_targeted_audience(&spa, &s, 1.2).is_err());
        assert!(runner.draw_targeted_audience(&spa, &s, 0.0).unwrap().is_empty());
    }

    #[test]
    fn oversized_target_clamps_to_population() {
        let (population, response, courses, _) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let s = spec(&courses, 3, 5000);
        assert_eq!(runner.draw_audience(&s).len(), 800);
    }

    #[test]
    fn campaign_produces_contacts_and_responses() {
        let (population, response, courses, spa) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let s = spec(&courses, 4, 400);
        let outcome = runner.run(&spa, &s, |_, _, _| 0.0, |_, _, _| {}).unwrap();
        assert_eq!(outcome.contacts.len(), 400);
        assert_eq!(outcome.responses, outcome.contacts.iter().filter(|c| c.responded).count());
        // calibrated near 21% but messages are model-assigned, so allow slack
        let rate = outcome.predictive_score();
        assert!((0.03..0.5).contains(&rate), "response rate {rate}");
        // feedback loop left traces in the platform
        assert_eq!(spa.stats().deliveries, 400);
        assert!(spa.stats().opens as usize == outcome.responses);
        assert!(spa.stats().transactions as usize >= outcome.responses);
    }

    #[test]
    fn campaign_is_deterministic() {
        let (population, response, courses, _) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let s = spec(&courses, 5, 200);
        let spa_a = Spa::new(&courses, SpaConfig::default());
        let spa_b = Spa::new(&courses, SpaConfig::default());
        let a = runner.run(&spa_a, &s, |_, _, _| 0.0, |_, _, _| {}).unwrap();
        let b = runner.run(&spa_b, &s, |_, _, _| 0.0, |_, _, _| {}).unwrap();
        assert_eq!(a.contacts, b.contacts);
        assert_eq!(a.responses, b.responses);
    }

    #[test]
    fn empty_appeal_is_rejected() {
        let (population, response, courses, spa) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let mut s = spec(&courses, 6, 10);
        s.course.appeal.clear();
        assert!(runner.run(&spa, &s, |_, _, _| 0.0, |_, _, _| {}).is_err());
    }

    #[test]
    fn update_hook_sees_every_contact() {
        let (population, response, courses, spa) = setup();
        let runner = CampaignRunner::new(&population, &response);
        let s = spec(&courses, 7, 150);
        let mut seen = 0usize;
        runner.run(&spa, &s, |_, _, _| 0.0, |_, _, _| seen += 1).unwrap();
        assert_eq!(seen, 150);
    }

    #[test]
    fn predictive_score_of_empty_campaign_is_zero() {
        let outcome = CampaignOutcome {
            id: CampaignId::new(0),
            channel: Channel::Push,
            contacts: vec![],
            responses: 0,
        };
        assert_eq!(outcome.predictive_score(), 0.0);
    }

    #[test]
    fn channel_names() {
        assert_eq!(Channel::Push.name(), "push");
        assert_eq!(Channel::Newsletter.name(), "newsletter");
    }
}
