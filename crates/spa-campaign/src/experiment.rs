//! The end-to-end Fig 6 experiment.
//!
//! Pipeline (mirroring §5.2–§5.4):
//!
//! 1. **History build-up** — WebLogs are generated and ingested so SUMs
//!    acquire subjective attributes; objective attributes are imported
//!    from the (synthetic) socio-demographic database.
//! 2. **Training campaigns** — a few campaigns run with untrained
//!    scores; their outcomes label the training set for the selection
//!    function (features = advice-stage rows at contact time).
//! 3. **Selection training** — a class-weighted linear SVM learns to
//!    rank users by propensity. For the E7 ablation the emotional block
//!    is masked out of both training and scoring.
//! 4. **Evaluation campaigns** — ten campaigns (8 push + 2 newsletter),
//!    each targeting a random slice of the population. Contacts record
//!    the model score and the realized response, yielding:
//!    * Fig 6(a): the cumulative redemption (gains) curve over all
//!      contacts, read at 40% of commercial action;
//!    * Fig 6(b): per-campaign predictive scores and their mean;
//!    * the "90% improvement" comparison against generic (standard-
//!      message, unranked) marketing.

use crate::campaign::{CampaignOutcome, CampaignRunner, CampaignSpec, Channel};
use spa_core::platform::{Spa, SpaConfig};
use spa_core::selection::SelectionFunction;
use spa_linalg::SparseVec;
use spa_ml::metrics::{self, GainsPoint};
use spa_ml::Dataset;
use spa_synth::catalog::{ActionCatalog, CourseCatalog};
use spa_synth::weblog::{self, WeblogConfig};
use spa_synth::{Population, PopulationConfig, ResponseConfig, ResponseModel};
use spa_types::{CampaignId, CourseId, Result, SpaError, Timestamp, UserId};

/// Number of attributes in the non-emotional block (objective +
/// subjective) — the ablation keeps features below this index.
const NON_EMOTIONAL_DIM: u32 = 65;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Population size (the paper had 3,162,069 registered users; the
    /// default keeps CI runtimes sane — scale up via examples/benches).
    pub n_users: usize,
    /// Course catalog size.
    pub n_courses: usize,
    /// Topic count.
    pub n_topics: usize,
    /// Whether to generate + ingest WebLog history first.
    pub ingest_weblogs: bool,
    /// Gradual-EIT warm-up contacts before any campaign (the paper's
    /// marketing strategy sent questions over many pushes before the
    /// measured campaigns; each contact carries one question, §5.2).
    pub history_eit_rounds: usize,
    /// Campaigns used purely to gather training labels.
    pub n_training_campaigns: usize,
    /// Evaluation campaigns (the paper ran 10: 8 push + 2 newsletters).
    pub n_eval_campaigns: usize,
    /// Fraction of the population targeted per campaign (the paper's
    /// 1,340,432 of 3,162,069 ≈ 0.424).
    pub target_fraction: f64,
    /// Calibration target for the mean matched response rate (the
    /// paper's Fig 6(b) average predictive score ≈ 0.21).
    pub response_target: f64,
    /// E7 ablation: mask the emotional attribute block everywhere.
    pub mask_emotional: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            n_users: 20_000,
            n_courses: 120,
            n_topics: 12,
            ingest_weblogs: true,
            history_eit_rounds: 18,
            n_training_campaigns: 4,
            n_eval_campaigns: 10,
            target_fraction: 0.424,
            response_target: 0.21,
            mask_emotional: false,
            seed: 0x1CDE,
        }
    }
}

/// One row of the Fig 6(b) table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignReport {
    /// Campaign number (1-based, as the paper charts them).
    pub number: usize,
    /// Channel.
    pub channel: Channel,
    /// Users targeted.
    pub targets: usize,
    /// Useful impacts (transactions).
    pub useful_impacts: usize,
    /// Predictive score = useful impacts / targets.
    pub predictive_score: f64,
    /// ROC-AUC of the selection scores within this campaign.
    pub auc: f64,
}

/// Everything the Fig 6 experiment measures.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-campaign rows (Fig 6b).
    pub campaigns: Vec<CampaignReport>,
    /// Mean predictive score across campaigns (paper: ≈ 21%).
    pub mean_predictive_score: f64,
    /// Total contacts across evaluation campaigns.
    pub total_targets: usize,
    /// Total useful impacts (paper: 282,938 at its scale).
    pub total_useful_impacts: usize,
    /// Cumulative redemption curve over all contacts (Fig 6a).
    pub gains: Vec<GainsPoint>,
    /// Useful-impact share captured at 40% of commercial action
    /// (paper: > 76%).
    pub captured_at_40: f64,
    /// ROC-AUC of the selection scores against realized responses.
    pub auc: f64,
    /// Expected response rate of generic marketing (standard message,
    /// no ranking) over the same audience.
    pub baseline_rate: f64,
    /// Realized SPA response rate over all contacts.
    pub spa_rate: f64,
    /// Relative redemption improvement over generic marketing
    /// (paper: "we have improved the redemption … in a 90%").
    pub redemption_improvement: f64,
}

/// The assembled experiment.
pub struct Experiment {
    config: ExperimentConfig,
    population: Population,
    courses: CourseCatalog,
    actions: ActionCatalog,
    response: ResponseModel,
}

impl Experiment {
    /// Generates the synthetic substrate for a configuration.
    pub fn new(config: ExperimentConfig) -> Result<Self> {
        if config.n_eval_campaigns == 0 {
            return Err(SpaError::Invalid("need at least one evaluation campaign".into()));
        }
        if !(0.0..=1.0).contains(&config.target_fraction) || config.target_fraction == 0.0 {
            return Err(SpaError::Invalid("target_fraction must be in (0,1]".into()));
        }
        let population = Population::generate(PopulationConfig {
            n_users: config.n_users,
            seed: config.seed,
            ..Default::default()
        })?;
        let courses =
            CourseCatalog::generate(config.n_courses, config.n_topics, config.seed ^ 0xC0)?;
        let actions = ActionCatalog::emagister();
        // Calibrate against the realistic campaign mix (empirically,
        // just over a third of contacts end up emotionally matched and
        // the matched attribute is not always the dominant one, so a
        // dominant-matched coverage of 0.35 reproduces the paper's ≈21%
        // realized rate; the Gradual EIT never reaches full coverage —
        // §5.2's sparsity).
        let response =
            ResponseModel::new(ResponseConfig { seed: config.seed ^ 0x0E5, ..Default::default() })
                .calibrate_mixed(&population, config.response_target, 0.35)?;
        Ok(Self { config, population, courses, actions, response })
    }

    /// The latent population (for inspection).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The calibrated latent response model.
    pub fn response(&self) -> &ResponseModel {
        &self.response
    }

    fn mask(&self, row: SparseVec) -> SparseVec {
        if self.config.mask_emotional {
            row.masked(|i| i < NON_EMOTIONAL_DIM)
        } else {
            row
        }
    }

    /// Campaign-aware feature row: the (masked) advice-stage row plus
    /// two *match features* — the maximum and mean estimated sensibility
    /// of the user for the campaign course's appeal attributes. The
    /// paper scores users per campaign ("ranking users to assess their
    /// propensity to accept a recommended item", §5.2), and the match
    /// features are exactly what a per-campaign model can see: how well
    /// this user's discovered emotional profile fits *this* course's
    /// sales talk. Under the E7 ablation they are zeroed along with the
    /// emotional block.
    fn featurize(
        &self,
        spa: &Spa,
        user: UserId,
        appeal: &[spa_types::EmotionalAttribute],
        message: &spa_core::messaging::AssignedMessage,
    ) -> SparseVec {
        let base = self.mask(spa.advice_row(user).unwrap_or_else(|_| SparseVec::zeros(75)));
        // one borrowed read of the user's published model computes every
        // match feature — no whole-model clone per contact (this runs
        // inside the per-campaign contact fan-out, so a clone here was
        // the dominant allocation of the whole experiment)
        let (max_match, mean_match, assigned_estimate, matched_flag): (f64, f64, f64, f64) =
            if self.config.mask_emotional {
                (0.0, 0.0, 0.0, 0.0)
            } else {
                spa.registry().with_model_read(user, |model| match model {
                    Some(model) => {
                        let ids = spa.schema().emotional_ids();
                        let estimates = appeal.iter().map(|e| {
                            let attr = ids[e.ordinal()];
                            if model.relevance(attr) > 0.0 {
                                model.value(attr)
                            } else {
                                0.0
                            }
                        });
                        let (mut max, mut sum, mut count) = (0.0f64, 0.0f64, 0usize);
                        for estimate in estimates {
                            max = max.max(estimate);
                            sum += estimate;
                            count += 1;
                        }
                        let mean = if count == 0 { 0.0 } else { sum / count as f64 };
                        // the assigned message is known before the send: its
                        // appealed attribute's estimate and a matched flag
                        let (estimate, flag) = match message.attribute {
                            Some(emo) => (model.value(ids[emo.ordinal()]), 1.0),
                            None => (0.0, 0.0),
                        };
                        (max, mean, estimate, flag)
                    }
                    None => match message.attribute {
                        Some(_) => (0.0, 0.0, 0.0, 1.0),
                        None => (0.0, 0.0, 0.0, 0.0),
                    },
                })
            };
        let match_block = SparseVec::from_pairs(
            4,
            [
                (0u32, max_match.max(1e-9)),
                (1u32, mean_match.max(1e-9)),
                (2u32, assigned_estimate.max(1e-9)),
                (3u32, matched_flag.max(1e-9)),
            ],
        )
        .expect("four fixed indices");
        base.concat(&match_block)
    }

    fn campaign_spec(&self, number: usize, id_offset: u32) -> CampaignSpec {
        // the paper ran 8 push + 2 newsletter campaigns; we make the
        // last two of the eval set newsletters
        let channel = if number + 2 >= self.config.n_eval_campaigns {
            Channel::Newsletter
        } else {
            Channel::Push
        };
        let course_id = CourseId::new((number as u32 * 7 + id_offset) % self.courses.len() as u32);
        CampaignSpec {
            id: CampaignId::new(id_offset + number as u32),
            channel,
            target_size: ((self.population.len() as f64) * self.config.target_fraction).round()
                as usize,
            course: self.courses.course(course_id).expect("course id in range").clone(),
            at: Timestamp::from_millis((id_offset as u64 + number as u64) * 86_400_000),
            seed: self.config.seed ^ 0xA0D1,
        }
    }

    /// Runs the full experiment.
    pub fn run(&self) -> Result<ExperimentResult> {
        let spa = Spa::new(&self.courses, SpaConfig::default());

        // --- 1. history build-up -----------------------------------------
        // objective attributes from the socio-demographic database
        for user in self.population.users() {
            spa.import_objective(user.id, &user.objective)?;
        }
        if self.config.ingest_weblogs {
            let weblog_config = WeblogConfig {
                mean_sessions: 2.0,
                mean_session_len: 4.0,
                seed: self.config.seed ^ 0x3E6,
                ..Default::default()
            };
            let mut ingest_error = None;
            weblog::generate_weblogs(
                &self.population,
                &self.actions,
                &self.courses,
                &weblog_config,
                |event| {
                    if ingest_error.is_none() {
                        if let Err(e) = spa.ingest(event) {
                            ingest_error = Some(e);
                        }
                    }
                },
            )?;
            if let Some(e) = ingest_error {
                return Err(e);
            }
        }
        // Gradual-EIT warm-up: one question per contact, scheduled by
        // the engine, answered (or skipped) by the latent simulator.
        let answer_sim =
            spa_synth::eit::AnswerSimulator { noise: 0.10, seed: self.config.seed ^ 0xE17 };
        for round in 0..self.config.history_eit_rounds {
            for user in self.population.users() {
                let question = spa.next_eit_question(user.id);
                let event = answer_sim.react(
                    user,
                    question.id,
                    question.target,
                    round as u64,
                    Timestamp::from_millis(round as u64 * 3_600_000),
                );
                spa.ingest(&event)?;
            }
        }

        let runner = CampaignRunner::new(&self.population, &self.response);

        // --- 2. training campaigns ---------------------------------------
        // Feature rows are captured through the contact hook, which runs
        // *before* the response is drawn and fed back — capturing them
        // afterwards would leak the label through the reward/punish
        // update of the very outcome being predicted. Contacts fan out
        // across threads (`parallel` feature); rows come back in
        // contact order, so the training set is thread-count-invariant.
        let feature_dim = spa.schema().len() + 4;
        let mut training = Dataset::new(feature_dim);
        for t in 0..self.config.n_training_campaigns {
            let spec = self.campaign_spec(t, 1000);
            let appeal = spec.course.appeal.clone();
            let (outcome, rows) = runner.run_collect(&spa, &spec, |spa, user, message| {
                (f64::NAN, self.featurize(spa, user, &appeal, message))
            })?;
            for (row, contact) in rows.iter().zip(outcome.contacts.iter()) {
                training.push(row, if contact.responded { 1.0 } else { -1.0 })?;
            }
        }

        // --- 3. selection training ----------------------------------------
        let mut selection = SelectionFunction::with_imbalance(feature_dim, {
            let pos = training.positives().max(1);
            ((training.len() - pos) as f64 / pos as f64).clamp(1.0, 16.0)
        });
        if training.is_empty() {
            return Err(SpaError::Invalid("no training contacts were generated".into()));
        }
        selection.fit(&training)?;

        // --- 4. evaluation campaigns ---------------------------------------
        let mut campaigns = Vec::with_capacity(self.config.n_eval_campaigns);
        let mut all_labels: Vec<f64> = Vec::new();
        let mut all_scores: Vec<f64> = Vec::new();
        let mut baseline_expectation = 0.0f64;
        let mut outcomes: Vec<CampaignOutcome> = Vec::new();
        for number in 0..self.config.n_eval_campaigns {
            let spec = self.campaign_spec(number, 2000);
            let appeal = spec.course.appeal.clone();
            // Parallel target scoring: each contact featurizes and
            // scores its user independently (chunked over the sharded
            // SumRegistry), so the 42%-of-population scoring sweep —
            // the paper's 1.34M-users-per-push workload — uses every
            // core while staying deterministic.
            let (outcome, _) = runner.run_collect(&spa, &spec, |spa, user, message| {
                (selection.score(&self.featurize(spa, user, &appeal, message)).unwrap_or(0.0), ())
            })?;
            // Pool *within-campaign percentile ranks*, not raw margins:
            // "X% of commercial action" (Fig 6a) means contacting the
            // top-X% of each campaign's own ranking, so the aggregate
            // curve must be rank-aligned across campaigns whose base
            // rates differ.
            let mut order: Vec<usize> = (0..outcome.contacts.len()).collect();
            order.sort_by(|&a, &b| {
                outcome.contacts[b]
                    .score
                    .partial_cmp(&outcome.contacts[a].score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let n_contacts = order.len().max(1);
            let mut percentile = vec![0.0f64; order.len()];
            for (rank, &i) in order.iter().enumerate() {
                percentile[i] = 1.0 - rank as f64 / n_contacts as f64;
            }
            for (i, contact) in outcome.contacts.iter().enumerate() {
                all_labels.push(if contact.responded { 1.0 } else { -1.0 });
                all_scores.push(percentile[i]);
                let latent = self.population.user(contact.user).expect("contact users exist");
                baseline_expectation += self.response.probability(latent, None);
            }
            let campaign_labels: Vec<f64> =
                outcome.contacts.iter().map(|c| if c.responded { 1.0 } else { -1.0 }).collect();
            let campaign_scores: Vec<f64> = outcome.contacts.iter().map(|c| c.score).collect();
            campaigns.push(CampaignReport {
                number: number + 1,
                channel: outcome.channel,
                targets: outcome.contacts.len(),
                useful_impacts: outcome.responses,
                predictive_score: outcome.predictive_score(),
                auc: metrics::roc_auc(&campaign_labels, &campaign_scores)?,
            });
            outcomes.push(outcome);
        }

        let total_targets = all_labels.len();
        let total_useful_impacts = all_labels.iter().filter(|&&y| y > 0.0).count();
        let spa_rate = if total_targets == 0 {
            0.0
        } else {
            total_useful_impacts as f64 / total_targets as f64
        };
        let baseline_rate =
            if total_targets == 0 { 0.0 } else { baseline_expectation / total_targets as f64 };
        let gains = metrics::gains_curve(&all_labels, &all_scores, 100)?;
        let result = ExperimentResult {
            mean_predictive_score: campaigns.iter().map(|c| c.predictive_score).sum::<f64>()
                / campaigns.len() as f64,
            campaigns,
            total_targets,
            total_useful_impacts,
            captured_at_40: metrics::captured_at(&gains, 0.40),
            auc: metrics::roc_auc(&all_labels, &all_scores)?,
            gains,
            baseline_rate,
            spa_rate,
            redemption_improvement: if baseline_rate > 0.0 {
                (spa_rate - baseline_rate) / baseline_rate
            } else {
                0.0
            },
        };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mask: bool) -> ExperimentConfig {
        ExperimentConfig {
            n_users: 2500,
            n_courses: 40,
            n_topics: 8,
            ingest_weblogs: false,
            history_eit_rounds: 15,
            n_training_campaigns: 3,
            n_eval_campaigns: 10,
            target_fraction: 0.4,
            mask_emotional: mask,
            ..Default::default()
        }
    }

    #[test]
    fn experiment_validates_config() {
        assert!(Experiment::new(ExperimentConfig { n_eval_campaigns: 0, ..small_config(false) })
            .is_err());
        assert!(Experiment::new(ExperimentConfig { target_fraction: 0.0, ..small_config(false) })
            .is_err());
    }

    #[test]
    fn full_experiment_reproduces_the_fig6_shape() {
        let experiment = Experiment::new(small_config(false)).unwrap();
        let result = experiment.run().unwrap();

        // Fig 6(b): ten campaigns, 8 push + 2 newsletters, mean near 21%
        assert_eq!(result.campaigns.len(), 10);
        let newsletters =
            result.campaigns.iter().filter(|c| c.channel == Channel::Newsletter).count();
        assert_eq!(newsletters, 2);
        assert!(
            (0.10..0.35).contains(&result.mean_predictive_score),
            "mean predictive score {} strays from the paper's ~21%",
            result.mean_predictive_score
        );

        // Fig 6(a): strong concentration of impacts in the top-ranked slice
        // At this deliberately tiny scale (2.5k users, 3 training
        // campaigns) the curve is noisier than the 50k-user example run
        // recorded in EXPERIMENTS.md; it must still clear the diagonal
        // by a wide margin.
        assert!(
            result.captured_at_40 > 0.50,
            "captured at 40% effort = {} — should far exceed the diagonal's 0.40",
            result.captured_at_40
        );
        assert!(result.auc > 0.65, "AUC {}", result.auc);

        // redemption improvement over generic marketing is large
        assert!(
            result.redemption_improvement > 0.3,
            "improvement {} too small",
            result.redemption_improvement
        );

        // bookkeeping consistency
        assert_eq!(
            result.total_useful_impacts,
            result.campaigns.iter().map(|c| c.useful_impacts).sum::<usize>()
        );
        assert_eq!(result.total_targets, result.campaigns.iter().map(|c| c.targets).sum::<usize>());
        let last = result.gains.last().unwrap();
        assert!((last.captured - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ablation_masking_emotional_features_hurts_ranking() {
        let full = Experiment::new(small_config(false)).unwrap().run().unwrap();
        let masked = Experiment::new(small_config(true)).unwrap().run().unwrap();
        assert!(
            full.auc > masked.auc + 0.02,
            "emotional features must add ranking skill: full {} vs masked {}",
            full.auc,
            masked.auc
        );
        assert!(
            full.captured_at_40 > masked.captured_at_40,
            "gains at 40%: full {} vs masked {}",
            full.captured_at_40,
            masked.captured_at_40
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = Experiment::new(small_config(false)).unwrap().run().unwrap();
        let b = Experiment::new(small_config(false)).unwrap().run().unwrap();
        assert_eq!(a.total_useful_impacts, b.total_useful_impacts);
        assert_eq!(a.auc, b.auc);
        assert_eq!(a.campaigns, b.campaigns);
    }
}
