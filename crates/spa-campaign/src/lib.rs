//! # spa-campaign — campaign engine and evaluation harness
//!
//! Reproduces the paper's §5.4 evaluation: "We have tested SPA with
//! eight Push and two newsletters campaigns. The target was 1,340,432
//! users in each campaign chosen in random way."
//!
//! * [`campaign`] — the campaign runner: target selection, message
//!   assignment through the platform's Messaging Agent, response
//!   simulation against the latent [`spa_synth::ResponseModel`], and the
//!   LifeLog feedback loop (deliveries, opens, transactions, rewards);
//! * [`experiment`] — the end-to-end Fig 6 experiment: history build-up
//!   (Gradual EIT + WebLogs), training campaigns, selection-function
//!   training, ten evaluation campaigns, cumulative-redemption curve
//!   (Fig 6a) and per-campaign predictive scores (Fig 6b), plus the
//!   emotional-ablation variant (E7);
//! * [`report`] — plain-text/CSV rendering of the experiment tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiment;
pub mod report;

pub use campaign::{CampaignOutcome, CampaignRunner, CampaignSpec, Channel};
pub use experiment::{Experiment, ExperimentConfig, ExperimentResult};
