//! Plain-text and CSV rendering of experiment results.

use crate::experiment::ExperimentResult;
use spa_ml::metrics::GainsPoint;

/// Renders the Fig 6(a) cumulative redemption curve as a fixed-width
/// table (effort %, captured %), sampled every `step` points.
pub fn render_fig6a(gains: &[GainsPoint], step: usize) -> String {
    let mut out = String::from("Fig 6(a) — cumulative redemption curve\n");
    out.push_str(&format!("{:>10}  {:>12}\n", "effort %", "captured %"));
    for point in gains.iter().step_by(step.max(1)) {
        out.push_str(&format!(
            "{:>10.0}  {:>12.1}\n",
            point.effort * 100.0,
            point.captured * 100.0
        ));
    }
    out
}

/// Renders the Fig 6(b) predictive-score table.
pub fn render_fig6b(result: &ExperimentResult) -> String {
    let mut out = String::from("Fig 6(b) — predictive scores of the ten campaigns\n");
    out.push_str(&format!(
        "{:>4}  {:<12}{:>10}{:>10}{:>10}{:>8}\n",
        "#", "channel", "targets", "impacts", "score %", "AUC"
    ));
    for c in &result.campaigns {
        out.push_str(&format!(
            "{:>4}  {:<12}{:>10}{:>10}{:>10.1}{:>8.3}\n",
            c.number,
            c.channel.name(),
            c.targets,
            c.useful_impacts,
            c.predictive_score * 100.0,
            c.auc
        ));
    }
    out.push_str(&format!(
        "mean predictive score: {:.1}%   total useful impacts: {} of {}\n",
        result.mean_predictive_score * 100.0,
        result.total_useful_impacts,
        result.total_targets
    ));
    out
}

/// Renders the headline summary (the claims §5.4 makes in prose).
pub fn render_summary(result: &ExperimentResult) -> String {
    format!(
        "SPA campaign summary\n\
         --------------------\n\
         captured at 40% of commercial action : {:.1}%  (paper: >76%)\n\
         ROC-AUC of propensity ranking        : {:.3}\n\
         SPA realized response rate           : {:.1}%  (paper avg predictive score: 21%)\n\
         generic-marketing baseline rate      : {:.1}%\n\
         redemption improvement               : {:+.0}%  (paper: ~90%)\n",
        result.captured_at_40 * 100.0,
        result.auc,
        result.spa_rate * 100.0,
        result.baseline_rate * 100.0,
        result.redemption_improvement * 100.0,
    )
}

/// CSV rows (header + one row per campaign) for downstream plotting.
pub fn campaigns_csv(result: &ExperimentResult) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "campaign".to_string(),
        "channel".to_string(),
        "targets".to_string(),
        "useful_impacts".to_string(),
        "predictive_score".to_string(),
    ]];
    for c in &result.campaigns {
        rows.push(vec![
            c.number.to_string(),
            c.channel.name().to_string(),
            c.targets.to_string(),
            c.useful_impacts.to_string(),
            format!("{:.6}", c.predictive_score),
        ]);
    }
    rows
}

/// CSV rows for the gains curve.
pub fn gains_csv(gains: &[GainsPoint]) -> Vec<Vec<String>> {
    let mut rows = vec![vec!["effort".to_string(), "captured".to_string()]];
    for p in gains {
        rows.push(vec![format!("{:.4}", p.effort), format!("{:.6}", p.captured)]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Channel;
    use crate::experiment::CampaignReport;

    fn fake_result() -> ExperimentResult {
        let gains = vec![
            GainsPoint { effort: 0.0, captured: 0.0 },
            GainsPoint { effort: 0.5, captured: 0.8 },
            GainsPoint { effort: 1.0, captured: 1.0 },
        ];
        ExperimentResult {
            campaigns: vec![
                CampaignReport {
                    number: 1,
                    channel: Channel::Push,
                    targets: 100,
                    useful_impacts: 20,
                    predictive_score: 0.2,
                    auc: 0.8,
                },
                CampaignReport {
                    number: 2,
                    channel: Channel::Newsletter,
                    targets: 100,
                    useful_impacts: 25,
                    predictive_score: 0.25,
                    auc: 0.82,
                },
            ],
            mean_predictive_score: 0.225,
            total_targets: 200,
            total_useful_impacts: 45,
            captured_at_40: 0.76,
            auc: 0.81,
            gains,
            baseline_rate: 0.11,
            spa_rate: 0.225,
            redemption_improvement: 1.045,
        }
    }

    #[test]
    fn fig6a_table_lists_sampled_points() {
        let r = fake_result();
        let table = render_fig6a(&r.gains, 1);
        assert!(table.contains("effort"));
        assert_eq!(table.lines().count(), 2 + 3);
        assert!(table.contains("80.0"), "captured at 50% should print as 80.0");
    }

    #[test]
    fn fig6b_table_has_a_row_per_campaign() {
        let r = fake_result();
        let table = render_fig6b(&r);
        assert!(table.contains("push"));
        assert!(table.contains("newsletter"));
        assert!(table.contains("22.5%"), "mean row: {table}");
        assert!(table.contains("45 of 200"));
    }

    #[test]
    fn summary_mentions_the_paper_anchors() {
        let s = render_summary(&fake_result());
        assert!(s.contains("76.0%"));
        assert!(s.contains("+104%") || s.contains("+105%"));
        assert!(s.contains("0.810"));
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let r = fake_result();
        let campaigns = campaigns_csv(&r);
        assert_eq!(campaigns.len(), 3);
        assert_eq!(campaigns[0].len(), 5);
        assert_eq!(campaigns[1][1], "push");
        let gains = gains_csv(&r.gains);
        assert_eq!(gains.len(), 4);
        assert_eq!(gains[0], vec!["effort", "captured"]);
    }
}
