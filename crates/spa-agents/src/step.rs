//! Deterministic single-threaded scheduler.
//!
//! Messages are processed strictly FIFO, so a given initial stimulus
//! always produces the same interleaving — which is what experiment
//! reproducibility requires. Undeliverable messages (unknown recipient)
//! are retained for inspection rather than dropped silently.

use crate::{validate_name, Agent, Context};
use spa_types::{Result, SpaError};
use std::collections::{HashMap, VecDeque};

/// Single-threaded FIFO agent scheduler.
pub struct StepRuntime<M> {
    agents: HashMap<String, Box<dyn Agent<M>>>,
    queue: VecDeque<(String, M)>,
    dead_letters: Vec<(String, M)>,
    delivered: u64,
    started: bool,
}

impl<M> Default for StepRuntime<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> StepRuntime<M> {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Self {
            agents: HashMap::new(),
            queue: VecDeque::new(),
            dead_letters: Vec::new(),
            delivered: 0,
            started: false,
        }
    }

    /// Registers an agent under `name`.
    pub fn register(&mut self, name: impl Into<String>, agent: Box<dyn Agent<M>>) -> Result<()> {
        let name = name.into();
        validate_name(&name)?;
        if self.agents.contains_key(&name) {
            return Err(SpaError::Invalid(format!("agent {name:?} already registered")));
        }
        self.agents.insert(name, agent);
        Ok(())
    }

    /// Registered agent names (sorted).
    pub fn agent_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.agents.keys().cloned().collect();
        names.sort();
        names
    }

    /// Enqueues a message from the outside world.
    pub fn post(&mut self, to: impl Into<String>, msg: M) {
        self.queue.push_back((to.into(), msg));
    }

    /// Runs `on_start` hooks (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Deterministic order: sorted by name.
        let names = self.agent_names();
        for name in names {
            let mut ctx = Context::new(&name);
            if let Some(agent) = self.agents.get_mut(&name) {
                agent.on_start(&mut ctx);
            }
            self.queue.extend(ctx.drain());
        }
    }

    /// Delivers at most one message. Returns `false` when the queue was
    /// empty.
    pub fn step(&mut self) -> bool {
        let (to, msg) = match self.queue.pop_front() {
            Some(entry) => entry,
            None => return false,
        };
        match self.agents.get_mut(&to) {
            Some(agent) => {
                let mut ctx = Context::new(&to);
                agent.handle(msg, &mut ctx);
                self.delivered += 1;
                self.queue.extend(ctx.drain());
            }
            None => self.dead_letters.push((to, msg)),
        }
        true
    }

    /// Drains the queue to quiescence, bounded by `max_steps` to guard
    /// against message loops. Returns delivered count, or an error if
    /// the bound was hit with work remaining.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> Result<u64> {
        self.start();
        let before = self.delivered;
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            if steps >= max_steps && !self.queue.is_empty() {
                return Err(SpaError::Invalid(format!(
                    "message loop suspected: {} messages still queued after {max_steps} steps",
                    self.queue.len()
                )));
            }
        }
        Ok(self.delivered - before)
    }

    /// Total messages delivered to agents so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages addressed to unknown agents.
    pub fn dead_letters(&self) -> &[(String, M)] {
        &self.dead_letters
    }

    /// Messages still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Mutable access to a registered agent (for extracting results
    /// after a run).
    pub fn agent_mut(&mut self, name: &str) -> Option<&mut Box<dyn Agent<M>>> {
        self.agents.get_mut(name)
    }

    /// Removes and returns an agent, e.g. to downcast and inspect state.
    pub fn take_agent(&mut self, name: &str) -> Option<Box<dyn Agent<M>>> {
        self.agents.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards each number to `next`, incremented, until it reaches 3.
    struct Incrementer {
        next: String,
        seen: Vec<u32>,
    }

    impl Agent<u32> for Incrementer {
        fn handle(&mut self, msg: u32, ctx: &mut Context<u32>) {
            self.seen.push(msg);
            if msg < 3 {
                ctx.send(self.next.clone(), msg + 1);
            }
        }
    }

    struct Greeter;
    impl Agent<u32> for Greeter {
        fn on_start(&mut self, ctx: &mut Context<u32>) {
            ctx.send("a", 0);
        }
        fn handle(&mut self, _msg: u32, _ctx: &mut Context<u32>) {}
    }

    #[test]
    fn ping_pong_until_quiescence() {
        let mut rt = StepRuntime::new();
        rt.register("a", Box::new(Incrementer { next: "b".into(), seen: vec![] })).unwrap();
        rt.register("b", Box::new(Incrementer { next: "a".into(), seen: vec![] })).unwrap();
        rt.post("a", 0);
        let delivered = rt.run_to_quiescence(100).unwrap();
        assert_eq!(delivered, 4, "messages 0,1,2,3");
        assert_eq!(rt.pending(), 0);
    }

    #[test]
    fn on_start_hooks_fire_once() {
        let mut rt = StepRuntime::new();
        rt.register("greeter", Box::new(Greeter)).unwrap();
        rt.register("a", Box::new(Incrementer { next: "none".into(), seen: vec![] })).unwrap();
        rt.start();
        rt.start(); // idempotent
        assert_eq!(rt.pending(), 1);
        rt.run_to_quiescence(10).unwrap();
        assert_eq!(rt.delivered(), 1);
    }

    #[test]
    fn duplicate_or_empty_names_rejected() {
        let mut rt: StepRuntime<u32> = StepRuntime::new();
        rt.register("x", Box::new(Greeter)).unwrap();
        assert!(rt.register("x", Box::new(Greeter)).is_err());
        assert!(rt.register("", Box::new(Greeter)).is_err());
        assert_eq!(rt.agent_names(), vec!["x"]);
    }

    #[test]
    fn unknown_recipient_goes_to_dead_letters() {
        let mut rt: StepRuntime<u32> = StepRuntime::new();
        rt.register("a", Box::new(Incrementer { next: "ghost".into(), seen: vec![] })).unwrap();
        rt.post("a", 1);
        rt.run_to_quiescence(10).unwrap();
        assert_eq!(rt.dead_letters().len(), 1);
        assert_eq!(rt.dead_letters()[0].0, "ghost");
        assert_eq!(rt.dead_letters()[0].1, 2);
    }

    #[test]
    fn loop_guard_trips() {
        struct Echo;
        impl Agent<u32> for Echo {
            fn handle(&mut self, msg: u32, ctx: &mut Context<u32>) {
                ctx.send("echo", msg); // infinite self-loop
            }
        }
        let mut rt = StepRuntime::new();
        rt.register("echo", Box::new(Echo)).unwrap();
        rt.post("echo", 1);
        assert!(rt.run_to_quiescence(50).is_err());
    }

    #[test]
    fn fifo_order_is_preserved() {
        struct Recorder {
            log: Vec<u32>,
        }
        impl Agent<u32> for Recorder {
            fn handle(&mut self, msg: u32, _ctx: &mut Context<u32>) {
                self.log.push(msg);
            }
        }
        let mut rt = StepRuntime::new();
        rt.register("r", Box::new(Recorder { log: vec![] })).unwrap();
        for i in 0..10 {
            rt.post("r", i);
        }
        rt.run_to_quiescence(100).unwrap();
        // retrieve the recorder and check order — requires a concrete
        // type, so reconstruct via take_agent + trait object state probe
        // instead: delivered count suffices plus dead letters empty.
        assert_eq!(rt.delivered(), 10);
        assert!(rt.dead_letters().is_empty());
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut rt: StepRuntime<u32> = StepRuntime::new();
        assert!(!rt.step());
    }
}
