//! Threaded runtime: one OS thread per agent.
//!
//! Each agent owns a crossbeam mailbox; senders are shared through a
//! routing table so any agent (or the outside world, via
//! [`RuntimeHandle`]) can address any other by name. Shutdown is
//! cooperative: a control message closes each mailbox after the
//! messages already queued have been handled.

use crate::{validate_name, Agent, Context};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use spa_types::{Result, SpaError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

enum Control<M> {
    User(String /* from */, M),
    Stop,
}

struct Router<M> {
    routes: HashMap<String, Sender<Control<M>>>,
    dead_letters: Mutex<Vec<(String, String)>>,
    delivered: AtomicU64,
}

impl<M> Router<M> {
    fn send(&self, from: &str, to: &str, msg: M) {
        match self.routes.get(to) {
            Some(tx) => {
                if tx.send(Control::User(from.to_owned(), msg)).is_ok() {
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.dead_letters.lock().push((from.to_owned(), to.to_owned()));
                }
            }
            None => self.dead_letters.lock().push((from.to_owned(), to.to_owned())),
        }
    }
}

type NamedAgent<M> = (String, Box<dyn Agent<M>>);

/// Builder + owner of the agent threads.
pub struct ThreadedRuntime<M: Send + 'static> {
    pending: Vec<NamedAgent<M>>,
}

impl<M: Send + 'static> Default for ThreadedRuntime<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Send + 'static> ThreadedRuntime<M> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self { pending: Vec::new() }
    }

    /// Registers an agent to run on its own thread.
    pub fn register(&mut self, name: impl Into<String>, agent: Box<dyn Agent<M>>) -> Result<()> {
        let name = name.into();
        validate_name(&name)?;
        if self.pending.iter().any(|(n, _)| *n == name) {
            return Err(SpaError::Invalid(format!("agent {name:?} already registered")));
        }
        self.pending.push((name, agent));
        Ok(())
    }

    /// Spawns every agent thread and returns a handle for interaction.
    pub fn start(self) -> RuntimeHandle<M> {
        let mut routes = HashMap::new();
        type Registered<M> = (String, Box<dyn Agent<M>>, Receiver<Control<M>>);
        let mut receivers: Vec<Registered<M>> = Vec::new();
        for (name, agent) in self.pending {
            let (tx, rx) = unbounded();
            routes.insert(name.clone(), tx);
            receivers.push((name, agent, rx));
        }
        let router = Arc::new(Router {
            routes,
            dead_letters: Mutex::new(Vec::new()),
            delivered: AtomicU64::new(0),
        });
        let mut handles = Vec::new();
        for (name, mut agent, rx) in receivers {
            let router = Arc::clone(&router);
            handles.push(std::thread::spawn(move || {
                let mut ctx = Context::new(&name);
                agent.on_start(&mut ctx);
                for (to, msg) in ctx.drain() {
                    router.send(&name, &to, msg);
                }
                while let Ok(control) = rx.recv() {
                    match control {
                        Control::User(_from, msg) => {
                            let mut ctx = Context::new(&name);
                            agent.handle(msg, &mut ctx);
                            for (to, out) in ctx.drain() {
                                router.send(&name, &to, out);
                            }
                        }
                        Control::Stop => break,
                    }
                }
            }));
        }
        RuntimeHandle { router, handles }
    }
}

/// Handle to a running [`ThreadedRuntime`].
pub struct RuntimeHandle<M: Send + 'static> {
    router: Arc<Router<M>>,
    handles: Vec<JoinHandle<()>>,
}

impl<M: Send + 'static> RuntimeHandle<M> {
    /// Sends a message from the outside world.
    pub fn post(&self, to: &str, msg: M) {
        self.router.send("<external>", to, msg);
    }

    /// Count of successfully routed messages.
    pub fn delivered(&self) -> u64 {
        self.router.delivered.load(Ordering::Relaxed)
    }

    /// `(from, to)` pairs of messages that could not be routed.
    pub fn dead_letters(&self) -> Vec<(String, String)> {
        self.router.dead_letters.lock().clone()
    }

    /// Asks every agent to stop after draining its queued messages,
    /// then joins the threads.
    pub fn shutdown(mut self) {
        for tx in self.router.routes.values() {
            let _ = tx.send(Control::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct Counter {
        hits: Arc<AtomicUsize>,
        forward_to: Option<String>,
    }

    impl Agent<u64> for Counter {
        fn handle(&mut self, msg: u64, ctx: &mut Context<u64>) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            if let Some(next) = &self.forward_to {
                if msg > 0 {
                    ctx.send(next.clone(), msg - 1);
                }
            }
        }
    }

    #[test]
    fn messages_flow_between_threads() {
        let hits_a = Arc::new(AtomicUsize::new(0));
        let hits_b = Arc::new(AtomicUsize::new(0));
        let mut rt = ThreadedRuntime::new();
        rt.register("a", Box::new(Counter { hits: hits_a.clone(), forward_to: Some("b".into()) }))
            .unwrap();
        rt.register("b", Box::new(Counter { hits: hits_b.clone(), forward_to: Some("a".into()) }))
            .unwrap();
        let handle = rt.start();
        handle.post("a", 9); // a,b alternate for 10 messages total
                             // wait for quiescence
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while hits_a.load(Ordering::SeqCst) + hits_b.load(Ordering::SeqCst) < 10 {
            assert!(std::time::Instant::now() < deadline, "timed out waiting for messages");
            std::thread::yield_now();
        }
        handle.shutdown();
        assert_eq!(hits_a.load(Ordering::SeqCst), 5);
        assert_eq!(hits_b.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn unknown_recipients_are_recorded() {
        let mut rt: ThreadedRuntime<u64> = ThreadedRuntime::new();
        rt.register(
            "only",
            Box::new(Counter { hits: Arc::new(AtomicUsize::new(0)), forward_to: None }),
        )
        .unwrap();
        let handle = rt.start();
        handle.post("missing", 1);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while handle.dead_letters().is_empty() {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        assert_eq!(handle.dead_letters()[0], ("<external>".to_string(), "missing".to_string()));
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = ThreadedRuntime::new();
        rt.register("c", Box::new(Counter { hits: hits.clone(), forward_to: None })).unwrap();
        let handle = rt.start();
        for _ in 0..100 {
            handle.post("c", 0);
        }
        handle.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 100, "stop must come after queued mail");
    }

    #[test]
    fn registration_validates_names() {
        let mut rt: ThreadedRuntime<u64> = ThreadedRuntime::new();
        let mk = || Box::new(Counter { hits: Arc::new(AtomicUsize::new(0)), forward_to: None });
        rt.register("a", mk()).unwrap();
        assert!(rt.register("a", mk()).is_err());
        assert!(rt.register("", mk()).is_err());
        rt.start().shutdown();
    }

    #[test]
    fn delivered_counter_counts_routed_messages() {
        let hits = Arc::new(AtomicUsize::new(0));
        let mut rt = ThreadedRuntime::new();
        rt.register("c", Box::new(Counter { hits: hits.clone(), forward_to: None })).unwrap();
        let handle = rt.start();
        for _ in 0..7 {
            handle.post("c", 0);
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 7 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        assert_eq!(handle.delivered(), 7);
        handle.shutdown();
    }
}
