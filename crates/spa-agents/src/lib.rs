//! # spa-agents — lightweight multi-agent runtime
//!
//! The SPA architecture (paper Fig 3) is agent-based: a LifeLogs
//! Pre-processor Agent that "replicates itself in pro-active way", an
//! Attributes Manager Agent, a Messaging Agent and the Smart Component
//! exchange work asynchronously. This crate supplies the runtime those
//! agents run on:
//!
//! * [`Agent`] — the behaviour trait: react to a message, emit messages;
//! * [`StepRuntime`] — a deterministic, single-threaded scheduler that
//!   drains the message queue in FIFO order (used in tests and anywhere
//!   reproducibility matters);
//! * [`ThreadedRuntime`] — one OS thread per agent with
//!   crossbeam-channel mailboxes, for throughput experiments.
//!
//! Both runtimes share addressing by agent name and the same [`Context`]
//! API, so an agent implementation runs unchanged on either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runtime;
pub mod step;

pub use runtime::{RuntimeHandle, ThreadedRuntime};
pub use step::StepRuntime;

use spa_types::{Result, SpaError};

/// Outbound mail collected while an agent handles one message.
#[derive(Debug)]
pub struct Context<M> {
    self_name: String,
    outbox: Vec<(String, M)>,
}

impl<M> Context<M> {
    fn new(self_name: &str) -> Self {
        Self { self_name: self_name.to_owned(), outbox: Vec::new() }
    }

    /// Name of the agent currently handling the message.
    pub fn self_name(&self) -> &str {
        &self.self_name
    }

    /// Queues a message to another agent (or to self).
    pub fn send(&mut self, to: impl Into<String>, msg: M) {
        self.outbox.push((to.into(), msg));
    }

    fn drain(&mut self) -> Vec<(String, M)> {
        std::mem::take(&mut self.outbox)
    }
}

/// An agent: a named, stateful message handler.
pub trait Agent<M>: Send {
    /// Called once when the runtime starts, before any message.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Handles one inbound message, optionally emitting messages via
    /// the context.
    fn handle(&mut self, msg: M, ctx: &mut Context<M>);
}

/// Validates an agent name (non-empty, unique enforced at registration).
fn validate_name(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(SpaError::Invalid("agent name must be non-empty".into()));
    }
    Ok(())
}
