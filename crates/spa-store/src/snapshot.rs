//! Versioned, checksummed platform snapshots.
//!
//! A write-ahead log alone makes recovery **O(history)**: replaying
//! months of LifeLogs (≈50 GB/month in the paper's deployment, §5.1)
//! after every restart is unacceptable for a serving system. The
//! standard fix is the WAL + checkpoint architecture: periodically
//! serialize the in-memory state, record the log position the snapshot
//! covers, and on recovery load the newest valid snapshot and replay
//! only the tail behind it. Once a snapshot is durable, the covered
//! segments can be deleted ([`crate::log::EventLog::compact_before`]),
//! bounding both recovery time and disk usage.
//!
//! This module provides the **container**, not the contents: a snapshot
//! is a [`LogPosition`] plus a sequence of opaque, tagged,
//! length-prefixed sections, the whole body protected by one CRC-32.
//! The platform layer (spa-core) decides what goes in the sections
//! (user models, counters, selection weights); this layer guarantees
//! that whatever was written either reads back byte-identical or fails
//! loudly — a flipped bit anywhere in the file is a
//! [`SpaError::Corrupt`], never a silently different payload.
//!
//! ## File layout (little-endian)
//!
//! ```text
//! magic  "SPASNAP1"                      (8 bytes)
//! body:  version   u32                   (currently 1)
//!        segment   u64  ┐ log position the snapshot covers
//!        offset    u64  ┘
//!        n_sections u32
//!        n × [ tag u32 | len u64 | payload (len bytes) ]
//! crc32 over body                        (4 bytes)
//! ```
//!
//! ## Atomicity
//!
//! [`SnapshotBuilder::write_atomic`] writes to a temporary file in the
//! same directory, `fsync`s it, renames it over the final
//! position-derived name ([`snapshot_path`]) and `fsync`s the
//! directory. A crash at any point leaves either the old snapshot set
//! untouched or the new file fully in place — never a half-written
//! snapshot under a discoverable name. Discovery
//! ([`latest_valid_snapshot`]) ignores temporaries and skips files that
//! fail their CRC, so a torn temp write can never shadow an older good
//! checkpoint.

use crate::codec::crc32;
use crate::fault::{
    injected_error, real_io, StorageIo, WriteFault, INJECTED_FSYNC_FAILURE, INJECTED_TORN_WRITE,
    INJECTED_TRANSIENT_EIO,
};
use crate::log::LogPosition;
use spa_types::{Result, SpaError};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"SPASNAP1";

/// Current container format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Suffix of finished snapshot files.
pub const SNAPSHOT_EXT: &str = "snap";

/// Suffix of in-flight temporary files (ignored by discovery, removed
/// loudly by recovery's [`remove_stale_temps`]).
pub const TMP_EXT: &str = "snap-tmp";

/// Makes a completed rename durable by fsyncing its directory. A POSIX
/// notion — on non-unix targets the rename is left to the OS's own
/// metadata durability (opening a directory for sync is not portable).
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// The one crash-atomic file write in this crate: `bytes` land in `tmp`
/// (same directory), the file is fsynced, renamed over `path`, and the
/// directory fsynced. A crash at any point leaves `path` either absent
/// or its previous content — never partial. Used by snapshot files and
/// the shard manifest alike, so the sequence has exactly one
/// implementation to audit.
pub(crate) fn write_file_atomic(path: &Path, tmp: &Path, bytes: &[u8]) -> Result<()> {
    write_file_atomic_with(path, tmp, bytes, &crate::fault::RealIo)
}

/// [`write_file_atomic`] with a [`StorageIo`] seam. Unlike the WAL
/// append path there is no retry policy here: any injected fault fails
/// the whole atomic write loudly (the final `path` is never touched —
/// the rename only happens after a clean write + fsync) and the
/// operation as a whole (a checkpoint) simply did not commit. A torn
/// or transient fault leaves the partial/empty **temp** file behind,
/// exactly like a crash mid-checkpoint — recovery's
/// [`remove_stale_temps`] sweeps those.
pub(crate) fn write_file_atomic_with(
    path: &Path,
    tmp: &Path,
    bytes: &[u8],
    io: &dyn StorageIo,
) -> Result<()> {
    {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(tmp)?;
        match io.write_fault(bytes.len()) {
            None => file.write_all(bytes)?,
            Some(WriteFault::Transient) => {
                return Err(SpaError::Io(injected_error(
                    INJECTED_TRANSIENT_EIO,
                    format!("writing {}", tmp.display()),
                )))
            }
            Some(WriteFault::Torn { keep }) => {
                let keep = keep.min(bytes.len());
                file.write_all(&bytes[..keep])?;
                return Err(SpaError::Io(injected_error(
                    INJECTED_TORN_WRITE,
                    format!("{keep} of {} bytes landed in {}", bytes.len(), tmp.display()),
                )));
            }
        }
        if io.fsync_fault() {
            return Err(SpaError::Io(injected_error(
                INJECTED_FSYNC_FAILURE,
                format!("syncing {}", tmp.display()),
            )));
        }
        file.sync_all()?;
    }
    fs::rename(tmp, path)?;
    let dir = path.parent().ok_or_else(|| {
        SpaError::Invalid(format!("path {} has no parent directory", path.display()))
    })?;
    sync_dir(dir)?;
    Ok(())
}

/// Removes stale temporary files (`*.snap-tmp` and `*.tmp`) left in
/// `dir` by a crash mid-atomic-write, returning the removed paths so
/// the caller can surface the cleanup loudly. Finished snapshots,
/// manifests and subdirectories are never touched; a missing `dir` is
/// an empty sweep.
pub fn remove_stale_temps(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    let entries = match fs::read_dir(dir.as_ref()) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(removed),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.ends_with(&format!(".{TMP_EXT}")) || name.ends_with(".tmp") {
            fs::remove_file(&path)?;
            removed.push(path);
        }
    }
    removed.sort();
    Ok(removed)
}

/// Bounds-checked cursor advance shared by the binary state codecs:
/// splits `n` bytes off the front of `cursor` or errors with a
/// [`SpaError::Corrupt`] naming `what`.
pub fn take<'a>(cursor: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(SpaError::Corrupt(format!("state truncated reading {what}")));
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

/// Builds and atomically writes one snapshot file.
pub struct SnapshotBuilder {
    position: LogPosition,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Starts a snapshot covering the log prefix up to `position`.
    pub fn new(position: LogPosition) -> Self {
        Self { position, sections: Vec::new() }
    }

    /// Appends one tagged section. Tags are the platform layer's
    /// vocabulary; the container does not interpret them.
    pub fn section(&mut self, tag: u32, payload: Vec<u8>) -> &mut Self {
        self.sections.push((tag, payload));
        self
    }

    /// Serializes the snapshot body (everything between magic and CRC).
    fn body(&self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len() + 12).sum();
        let mut body = Vec::with_capacity(4 + 16 + 4 + payload_len);
        body.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        body.extend_from_slice(&self.position.segment.to_le_bytes());
        body.extend_from_slice(&self.position.offset.to_le_bytes());
        body.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            body.extend_from_slice(&tag.to_le_bytes());
            body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            body.extend_from_slice(payload);
        }
        body
    }

    /// Writes the snapshot to `path` atomically (temp file in the same
    /// directory → `fsync` → rename → directory `fsync`) and returns
    /// the file size. An existing file at `path` is replaced atomically;
    /// a crash mid-write leaves it untouched.
    pub fn write_atomic(&self, path: impl AsRef<Path>) -> Result<u64> {
        self.write_atomic_with(path, real_io().as_ref())
    }

    /// [`SnapshotBuilder::write_atomic`] with a [`StorageIo`] seam: an
    /// injected fault fails the checkpoint loudly before the rename, so
    /// the discoverable snapshot set is untouched (see
    /// [`write_file_atomic_with`] for what each fault leaves behind).
    pub fn write_atomic_with(&self, path: impl AsRef<Path>, io: &dyn StorageIo) -> Result<u64> {
        let path = path.as_ref();
        let dir = path.parent().ok_or_else(|| {
            SpaError::Invalid(format!("snapshot path {} has no parent directory", path.display()))
        })?;
        fs::create_dir_all(dir)?;
        let body = self.body();
        let mut bytes = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        write_file_atomic_with(path, &path.with_extension(TMP_EXT), &bytes, io)?;
        Ok(bytes.len() as u64)
    }
}

/// One decoded snapshot: the covered log position plus its sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    position: LogPosition,
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// Reads and fully validates a snapshot file. Any mismatch — bad
    /// magic, bad CRC, unknown version, truncated or trailing bytes,
    /// section lengths beyond the buffer — is [`SpaError::Corrupt`].
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        Self::read_with(path, real_io())
    }

    /// [`Snapshot::read`] with a [`StorageIo`] seam: the freshly read
    /// buffer passes through [`StorageIo::read_fault`] before decoding
    /// (`tail = false` — a snapshot is not a log tail), so injected bit
    /// rot must be caught by the container CRC and surfaced as a loud
    /// [`SpaError::Corrupt`].
    pub fn read_with(path: impl AsRef<Path>, io: Arc<dyn StorageIo>) -> Result<Self> {
        let path = path.as_ref();
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        io.read_fault(&mut bytes, false);
        Self::decode(&bytes)
            .map_err(|e| SpaError::Corrupt(format!("snapshot {}: {e}", path.display())))
    }

    /// Decodes a snapshot from raw bytes (the validation core of
    /// [`Snapshot::read`]).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < MAGIC.len() + 4 + 16 + 4 + 4 {
            return Err(SpaError::Corrupt("file shorter than the fixed header".into()));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SpaError::Corrupt("bad magic".into()));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let crc_actual = crc32(body);
        if crc_stored != crc_actual {
            return Err(SpaError::Corrupt(format!(
                "checksum mismatch: stored {crc_stored:#010x}, computed {crc_actual:#010x}"
            )));
        }
        let mut cursor = body;
        let version = u32::from_le_bytes(take(&mut cursor, 4, "version")?.try_into().expect("4"));
        if version != SNAPSHOT_VERSION {
            return Err(SpaError::Corrupt(format!("unsupported snapshot version {version}")));
        }
        let segment = u64::from_le_bytes(take(&mut cursor, 8, "segment")?.try_into().expect("8"));
        let offset = u64::from_le_bytes(take(&mut cursor, 8, "offset")?.try_into().expect("8"));
        let n_sections =
            u32::from_le_bytes(take(&mut cursor, 4, "section count")?.try_into().expect("4"));
        let mut sections = Vec::new();
        for i in 0..n_sections {
            let tag =
                u32::from_le_bytes(take(&mut cursor, 4, "section tag")?.try_into().expect("4"));
            let len =
                u64::from_le_bytes(take(&mut cursor, 8, "section length")?.try_into().expect("8"));
            let len = usize::try_from(len)
                .map_err(|_| SpaError::Corrupt(format!("section {i} length {len} overflows")))?;
            let payload = take(&mut cursor, len, "section payload")?.to_vec();
            sections.push((tag, payload));
        }
        if !cursor.is_empty() {
            return Err(SpaError::Corrupt(format!("{} trailing bytes", cursor.len())));
        }
        Ok(Self { position: LogPosition { segment, offset }, sections })
    }

    /// Log position the snapshot covers: recovery replays the tail
    /// after it, compaction may delete segments fully before it.
    pub fn position(&self) -> LogPosition {
        self.position
    }

    /// The first section carrying `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections.iter().find(|(t, _)| *t == tag).map(|(_, p)| p.as_slice())
    }

    /// All `(tag, payload)` sections in file order.
    pub fn sections(&self) -> &[(u32, Vec<u8>)] {
        &self.sections
    }
}

/// Canonical file name of a snapshot covering `position`, sortable by
/// position (zero-padded) so lexical order is coverage order.
pub fn snapshot_file_name(position: LogPosition) -> String {
    format!("snapshot-{:010}-{:012}.{SNAPSHOT_EXT}", position.segment, position.offset)
}

/// Canonical path of a snapshot covering `position` inside `dir`.
pub fn snapshot_path(dir: impl AsRef<Path>, position: LogPosition) -> PathBuf {
    dir.as_ref().join(snapshot_file_name(position))
}

/// Lists snapshot files in `dir`, ascending by covered position.
/// Temporaries and foreign files are ignored; validity is **not**
/// checked here (see [`latest_valid_snapshot`]).
pub fn list_snapshots(dir: impl AsRef<Path>) -> Result<Vec<(LogPosition, PathBuf)>> {
    let mut found = Vec::new();
    let entries = match fs::read_dir(dir.as_ref()) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        let Some(rest) = name.strip_prefix("snapshot-") else { continue };
        let Some(rest) = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}")) else { continue };
        let mut parts = rest.splitn(2, '-');
        let (Some(seg), Some(off)) = (parts.next(), parts.next()) else { continue };
        let (Ok(segment), Ok(offset)) = (seg.parse::<u64>(), off.parse::<u64>()) else { continue };
        found.push((LogPosition { segment, offset }, path));
    }
    found.sort_by_key(|&(p, _)| p);
    Ok(found)
}

/// Loads the newest snapshot in `dir` that passes full validation,
/// skipping (not erroring on) corrupt or unreadable ones — a torn or
/// bit-rotted newest snapshot falls back to the previous good one.
/// `None` when no valid snapshot exists.
pub fn latest_valid_snapshot(dir: impl AsRef<Path>) -> Result<Option<(Snapshot, PathBuf)>> {
    for (_, path) in list_snapshots(dir.as_ref())?.into_iter().rev() {
        if let Ok(snapshot) = Snapshot::read(&path) {
            return Ok(Some((snapshot, path)));
        }
    }
    Ok(None)
}

/// Deletes snapshot files covering positions strictly before `keep`
/// (used after a newer checkpoint is registered). Returns how many were
/// removed.
pub fn prune_snapshots_before(dir: impl AsRef<Path>, keep: LogPosition) -> Result<usize> {
    let mut removed = 0;
    for (position, path) in list_snapshots(dir.as_ref())? {
        if position < keep {
            fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(position: LogPosition) -> SnapshotBuilder {
        let mut b = SnapshotBuilder::new(position);
        b.section(1, vec![1, 2, 3, 4, 5]).section(2, Vec::new()).section(7, vec![0xAB; 33]);
        b
    }

    #[test]
    fn round_trips_positions_and_sections() {
        let dir = tmp_dir("roundtrip");
        let position = LogPosition { segment: 3, offset: 4096 };
        let path = snapshot_path(&dir, position);
        let bytes = sample(position).write_atomic(&path).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), bytes);
        let snap = Snapshot::read(&path).unwrap();
        assert_eq!(snap.position(), position);
        assert_eq!(snap.section(1), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(snap.section(2), Some(&[][..]));
        assert_eq!(snap.section(7).unwrap().len(), 33);
        assert_eq!(snap.section(99), None);
        assert_eq!(snap.sections().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let dir = tmp_dir("empty");
        let path = snapshot_path(&dir, LogPosition::default());
        SnapshotBuilder::new(LogPosition::default()).write_atomic(&path).unwrap();
        let snap = Snapshot::read(&path).unwrap();
        assert_eq!(snap.position(), LogPosition::default());
        assert!(snap.sections().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_sorts_by_position_and_ignores_temporaries() {
        let dir = tmp_dir("list");
        for position in [
            LogPosition { segment: 2, offset: 10 },
            LogPosition { segment: 0, offset: 999 },
            LogPosition { segment: 2, offset: 5 },
        ] {
            sample(position).write_atomic(snapshot_path(&dir, position)).unwrap();
        }
        fs::write(dir.join("snapshot-0000000009-000000000000.snap-tmp"), b"half written").unwrap();
        fs::write(dir.join("unrelated.txt"), b"noise").unwrap();
        let listed = list_snapshots(&dir).unwrap();
        let positions: Vec<LogPosition> = listed.iter().map(|&(p, _)| p).collect();
        assert_eq!(
            positions,
            vec![
                LogPosition { segment: 0, offset: 999 },
                LogPosition { segment: 2, offset: 5 },
                LogPosition { segment: 2, offset: 10 },
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_a_corrupt_newer_snapshot() {
        let dir = tmp_dir("fallback");
        let old = LogPosition { segment: 1, offset: 100 };
        let new = LogPosition { segment: 5, offset: 7 };
        sample(old).write_atomic(snapshot_path(&dir, old)).unwrap();
        sample(new).write_atomic(snapshot_path(&dir, new)).unwrap();
        // bit-rot the newer file
        let mut bytes = fs::read(snapshot_path(&dir, new)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(snapshot_path(&dir, new), &bytes).unwrap();
        let (snap, path) = latest_valid_snapshot(&dir).unwrap().expect("older one is valid");
        assert_eq!(snap.position(), old);
        assert_eq!(path, snapshot_path(&dir, old));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_lists_empty() {
        let dir = std::env::temp_dir().join("spa-snap-definitely-not-there");
        assert!(list_snapshots(&dir).unwrap().is_empty());
        assert!(latest_valid_snapshot(&dir).unwrap().is_none());
    }

    #[test]
    fn prune_removes_only_older_snapshots() {
        let dir = tmp_dir("prune");
        let keep = LogPosition { segment: 4, offset: 0 };
        for position in [
            LogPosition { segment: 1, offset: 0 },
            LogPosition { segment: 3, offset: 900 },
            keep,
            LogPosition { segment: 6, offset: 1 },
        ] {
            sample(position).write_atomic(snapshot_path(&dir, position)).unwrap();
        }
        assert_eq!(prune_snapshots_before(&dir, keep).unwrap(), 2);
        let left: Vec<LogPosition> =
            list_snapshots(&dir).unwrap().into_iter().map(|(p, _)| p).collect();
        assert_eq!(left, vec![keep, LogPosition { segment: 6, offset: 1 }]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_at_the_same_position_is_atomic_replace() {
        let dir = tmp_dir("rewrite");
        let position = LogPosition { segment: 0, offset: 64 };
        let path = snapshot_path(&dir, position);
        sample(position).write_atomic(&path).unwrap();
        let mut b = SnapshotBuilder::new(position);
        b.section(42, vec![9; 8]);
        b.write_atomic(&path).unwrap();
        let snap = Snapshot::read(&path).unwrap();
        assert_eq!(snap.section(42), Some(&[9u8; 8][..]));
        assert_eq!(snap.section(1), None, "old contents fully replaced");
        let _ = fs::remove_dir_all(&dir);
    }
}
