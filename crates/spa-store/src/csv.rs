//! Minimal CSV import/export.
//!
//! Reports and dataset interchange use plain CSV with RFC-4180 quoting
//! for the small set of cases we produce (fields containing commas,
//! quotes or newlines). This is intentionally a small, dependency-free
//! writer/parser, not a general CSV library.

use spa_types::{Result, SpaError};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Quotes a field if needed per RFC 4180.
pub fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serializes rows of string fields into CSV text.
pub fn to_csv<S: AsRef<str>>(rows: &[Vec<S>]) -> String {
    let mut out = String::new();
    for row in rows {
        let mut first = true;
        for field in row {
            if !first {
                out.push(',');
            }
            out.push_str(&quote_field(field.as_ref()));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Writes rows to a file.
pub fn write_csv<S: AsRef<str>>(path: impl AsRef<Path>, rows: &[Vec<S>]) -> Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(to_csv(rows).as_bytes())?;
    file.flush()?;
    Ok(())
}

/// Parses CSV text into rows of fields (handles quoted fields, embedded
/// quotes, commas and newlines; accepts both `\n` and `\r\n`).
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut field_started = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() && !field_started {
                    in_quotes = true;
                    field_started = true;
                } else {
                    return Err(SpaError::Invalid("quote inside unquoted field".into()));
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            other => {
                field.push(other);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(SpaError::Invalid("unterminated quoted field".into()));
    }
    if field_started || !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Reads and parses a CSV file.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Vec<Vec<String>>> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    parse_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plain_fields_round_trip() {
        let rows = vec![vec!["a", "b", "c"], vec!["1", "2", "3"]];
        let text = to_csv(&rows);
        assert_eq!(text, "a,b,c\n1,2,3\n");
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn special_characters_are_quoted() {
        let rows = vec![vec!["he,llo", "say \"hi\"", "multi\nline"]];
        let text = to_csv(&rows);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed[0][0], "he,llo");
        assert_eq!(parsed[0][1], "say \"hi\"");
        assert_eq!(parsed[0][2], "multi\nline");
    }

    #[test]
    fn crlf_line_endings_parse() {
        let parsed = parse_csv("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(parsed, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn missing_trailing_newline_is_tolerated() {
        let parsed = parse_csv("a,b\nc,d").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], vec!["c", "d"]);
    }

    #[test]
    fn empty_fields_survive() {
        let parsed = parse_csv("a,,c\n").unwrap();
        assert_eq!(parsed, vec![vec!["a", "", "c"]]);
        let quoted_empty = parse_csv("\"\",x\n").unwrap();
        assert_eq!(quoted_empty, vec![vec!["", "x"]]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_csv("ab\"c\n").is_err(), "quote mid-field");
        assert!(parse_csv("\"unterminated").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_csv("").unwrap().is_empty());
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("spa-csv-{}.csv", std::process::id()));
        let rows = vec![vec!["x".to_string(), "y,z".to_string()]];
        write_csv(&path, &rows).unwrap();
        let parsed = read_csv(&path).unwrap();
        assert_eq!(parsed, vec![vec!["x", "y,z"]]);
        let _ = std::fs::remove_file(&path);
    }

    proptest! {
        #[test]
        fn arbitrary_fields_round_trip(
            rows in proptest::collection::vec(
                proptest::collection::vec("[ -~]{0,12}", 1..5),
                1..6,
            )
        ) {
            let text = to_csv(&rows);
            let parsed = parse_csv(&text).unwrap();
            prop_assert_eq!(parsed, rows);
        }
    }
}
