//! Sensibility index: attribute → users above a threshold.
//!
//! §5.3 step 3 assigns messages by "the attributes of his/her user model
//! that exceed a sensibility threshold". The Messaging Agent therefore
//! needs the inverse mapping — given a product attribute, which users
//! are sensitive to it — without scanning every profile per campaign.
//! [`SensibilityIndex`] maintains that inverted index.

use crate::profile::ProfileStore;
use spa_types::{AttributeId, Result, SpaError, UserId};
use std::collections::BTreeMap;

/// Inverted index from attribute to the users whose stored value for
/// that attribute is ≥ the index threshold.
#[derive(Debug, Clone)]
pub struct SensibilityIndex {
    threshold: f64,
    dim: usize,
    /// attribute → sorted user ids
    postings: BTreeMap<u32, Vec<UserId>>,
}

impl SensibilityIndex {
    /// Builds the index by scanning a profile store.
    pub fn build(store: &ProfileStore, threshold: f64) -> Result<Self> {
        if !threshold.is_finite() {
            return Err(SpaError::Invalid("threshold must be finite".into()));
        }
        let mut postings: BTreeMap<u32, Vec<UserId>> = BTreeMap::new();
        store.for_each(|user, profile| {
            for (attr, &value) in profile.values.iter().enumerate() {
                if value >= threshold {
                    postings.entry(attr as u32).or_default().push(user);
                }
            }
        });
        for list in postings.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        Ok(Self { threshold, dim: store.dim(), postings })
    }

    /// The threshold used at build time.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Users sensitive to `attr` (sorted ascending; empty when none).
    pub fn users_for(&self, attr: AttributeId) -> &[UserId] {
        self.postings.get(&attr.raw()).map_or(&[], |v| v.as_slice())
    }

    /// Number of users sensitive to `attr`.
    pub fn count_for(&self, attr: AttributeId) -> usize {
        self.users_for(attr).len()
    }

    /// True when `user` is sensitive to `attr`.
    pub fn is_sensitive(&self, user: UserId, attr: AttributeId) -> bool {
        self.users_for(attr).binary_search(&user).is_ok()
    }

    /// Attributes that have at least one sensitive user.
    pub fn active_attributes(&self) -> impl Iterator<Item = AttributeId> + '_ {
        self.postings.keys().map(|&a| AttributeId::new(a))
    }

    /// Users sensitive to *any* of the given attributes (set union).
    pub fn users_for_any(&self, attrs: &[AttributeId]) -> Vec<UserId> {
        let mut out: Vec<UserId> =
            attrs.iter().flat_map(|&a| self.users_for(a).iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Attribute dimensionality of the indexed store.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_types::Timestamp;

    fn store() -> ProfileStore {
        let s = ProfileStore::new(3);
        // user 0: high on attr 0; user 1: high on 0 and 2; user 2: none
        s.update(UserId::new(0), Timestamp::from_millis(0), |v| v[0] = 0.9);
        s.update(UserId::new(1), Timestamp::from_millis(0), |v| {
            v[0] = 0.8;
            v[2] = 0.7;
        });
        s.update(UserId::new(2), Timestamp::from_millis(0), |v| v[1] = 0.1);
        s
    }

    #[test]
    fn postings_respect_threshold() {
        let idx = SensibilityIndex::build(&store(), 0.5).unwrap();
        assert_eq!(idx.users_for(AttributeId::new(0)), &[UserId::new(0), UserId::new(1)]);
        assert_eq!(idx.users_for(AttributeId::new(2)), &[UserId::new(1)]);
        assert!(idx.users_for(AttributeId::new(1)).is_empty());
        assert_eq!(idx.count_for(AttributeId::new(0)), 2);
    }

    #[test]
    fn membership_queries() {
        let idx = SensibilityIndex::build(&store(), 0.5).unwrap();
        assert!(idx.is_sensitive(UserId::new(1), AttributeId::new(2)));
        assert!(!idx.is_sensitive(UserId::new(0), AttributeId::new(2)));
        assert!(!idx.is_sensitive(UserId::new(99), AttributeId::new(0)));
    }

    #[test]
    fn active_attributes_skip_empty_postings() {
        let idx = SensibilityIndex::build(&store(), 0.5).unwrap();
        let active: Vec<u32> = idx.active_attributes().map(|a| a.raw()).collect();
        assert_eq!(active, vec![0, 2]);
    }

    #[test]
    fn union_query_dedups() {
        let idx = SensibilityIndex::build(&store(), 0.5).unwrap();
        let users = idx.users_for_any(&[AttributeId::new(0), AttributeId::new(2)]);
        assert_eq!(users, vec![UserId::new(0), UserId::new(1)]);
    }

    #[test]
    fn lower_threshold_admits_more_users() {
        let strict = SensibilityIndex::build(&store(), 0.85).unwrap();
        let lax = SensibilityIndex::build(&store(), 0.05).unwrap();
        assert_eq!(strict.count_for(AttributeId::new(0)), 1);
        assert_eq!(lax.count_for(AttributeId::new(0)), 2);
        assert_eq!(lax.count_for(AttributeId::new(1)), 1);
        assert!(strict.threshold() > lax.threshold());
    }

    #[test]
    fn rejects_non_finite_threshold() {
        assert!(SensibilityIndex::build(&store(), f64::NAN).is_err());
        assert!(SensibilityIndex::build(&store(), f64::INFINITY).is_err());
    }

    #[test]
    fn empty_store_builds_empty_index() {
        let idx = SensibilityIndex::build(&ProfileStore::new(5), 0.5).unwrap();
        assert_eq!(idx.active_attributes().count(), 0);
        assert_eq!(idx.dim(), 5);
    }
}
