//! Binary framing for LifeLog records.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! +----------+----------+---------------------+
//! | len: u32 | crc: u32 | payload (len bytes) |
//! +----------+----------+---------------------+
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload. The payload itself is a
//! tagged encoding of [`LifeLogEvent`]: a one-byte event tag followed by
//! fixed-width fields. A hand-rolled codec keeps the store dependency-
//! free and the format stable and inspectable.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spa_types::{
    ActionId, CampaignId, CourseId, EventKind, LifeLogEvent, QuestionId, Result, SpaError,
    Timestamp, UserId, Valence,
};

/// CRC-32 (IEEE 802.3) over a byte slice — slicing-by-8: eight lookup
/// tables let the loop fold one 8-byte word per step instead of one
/// byte, producing exactly the byte-at-a-time result (the polynomial is
/// reflected 0xEDB88320 as in zlib). The WAL frames every ingested
/// event, so this runs once per write and once per replayed frame.
pub fn crc32(data: &[u8]) -> u32 {
    fn tables() -> &'static [[u32; 256]; 8] {
        use std::sync::OnceLock;
        static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut t = [[0u32; 256]; 8];
            for (i, entry) in t[0].iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                }
                *entry = c;
            }
            for i in 0..256usize {
                let mut c = t[0][i];
                for k in 1..8 {
                    c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                    t[k][i] = c;
                }
            }
            t
        })
    }
    let t = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes(chunk[..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

// Event tags. New variants must append, never renumber.
const TAG_ACTION: u8 = 1;
const TAG_TRANSACTION: u8 = 2;
const TAG_RATING: u8 = 3;
const TAG_EIT_ANSWER: u8 = 4;
const TAG_EIT_SKIPPED: u8 = 5;
const TAG_DELIVERED: u8 = 6;
const TAG_OPENED: u8 = 7;
const TAG_OBJECTIVE: u8 = 8;
const TAG_IGNORED: u8 = 9;
const TAG_OUTCOME: u8 = 10;

/// Caps on the variable-length administrative payloads. The objective
/// bound mirrors the SUM's 40 objective attributes; the outcome bound
/// is the advice-row dimension ceiling (well under [`MAX_PAYLOAD`]).
/// The decoder enforces both, so a corrupted count can never drive an
/// absurd allocation.
const MAX_OBJECTIVE_VALUES: usize = 64;
const MAX_OUTCOME_NNZ: usize = 256;

/// Sentinel encoding "no value" for optional u32 ids.
const NONE_SENTINEL: u32 = u32::MAX;

/// Upper bound on one *fixed-width* frame's size (8-byte header + the
/// largest fixed-width payload, an `EitAnswer` at 25 bytes) with
/// headroom. [`FrameScratch`] is sized by it; variable-width variants
/// ([`EventKind::ObjectiveImported`], [`EventKind::OutcomeObserved`])
/// bypass the scratch and frame straight into the heap buffer. A
/// fixed-width kind that outgrew it would panic loudly in tests, not
/// corrupt.
const MAX_FRAME: usize = 64;

/// Fixed-size stack cursor for frame encoding: [`BufMut`] writes
/// compile to plain bounds-checked stores — no capacity branch, no
/// heap — so a frame is assembled in registers/L1 and appended to the
/// segment buffer with a single `extend_from_slice`.
struct FrameScratch {
    buf: [u8; MAX_FRAME],
    len: usize,
}

impl FrameScratch {
    fn new() -> Self {
        Self { buf: [0; MAX_FRAME], len: 0 }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl BufMut for FrameScratch {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf[self.len..self.len + src.len()].copy_from_slice(src);
        self.len += src.len();
    }
}

/// Serializes one event into a payload (without framing).
pub fn encode_event<B: BufMut>(event: &LifeLogEvent, out: &mut B) {
    out.put_u32_le(event.user.raw());
    out.put_u64_le(event.at.millis());
    match &event.kind {
        EventKind::Action { action, course } => {
            out.put_u8(TAG_ACTION);
            out.put_u32_le(action.raw());
            out.put_u32_le(course.map_or(NONE_SENTINEL, |c| c.raw()));
        }
        EventKind::Transaction { course, campaign } => {
            out.put_u8(TAG_TRANSACTION);
            out.put_u32_le(course.raw());
            out.put_u32_le(campaign.map_or(NONE_SENTINEL, |c| c.raw()));
        }
        EventKind::Rating { course, stars } => {
            out.put_u8(TAG_RATING);
            out.put_u32_le(course.raw());
            out.put_u8(*stars);
        }
        EventKind::EitAnswer { question, answer } => {
            out.put_u8(TAG_EIT_ANSWER);
            out.put_u32_le(question.raw());
            out.put_f64_le(answer.value());
        }
        EventKind::EitSkipped { question } => {
            out.put_u8(TAG_EIT_SKIPPED);
            out.put_u32_le(question.raw());
        }
        EventKind::MessageDelivered { campaign } => {
            out.put_u8(TAG_DELIVERED);
            out.put_u32_le(campaign.raw());
        }
        EventKind::MessageOpened { campaign } => {
            out.put_u8(TAG_OPENED);
            out.put_u32_le(campaign.raw());
        }
        EventKind::ObjectiveImported { values } => {
            debug_assert!(values.len() <= MAX_OBJECTIVE_VALUES, "objective import too wide");
            out.put_u8(TAG_OBJECTIVE);
            out.put_u32_le(values.len() as u32);
            for &v in values {
                out.put_f64_le(v);
            }
        }
        EventKind::CampaignIgnored { campaign } => {
            out.put_u8(TAG_IGNORED);
            out.put_u32_le(campaign.raw());
        }
        EventKind::OutcomeObserved { responded, dim, indices, values } => {
            debug_assert_eq!(indices.len(), values.len(), "outcome row slices diverge");
            debug_assert!(indices.len() <= MAX_OUTCOME_NNZ, "outcome row too wide");
            out.put_u8(TAG_OUTCOME);
            out.put_u8(u8::from(*responded));
            out.put_u32_le(*dim);
            out.put_u32_le(indices.len() as u32);
            for &i in indices {
                out.put_u32_le(i);
            }
            for &v in values {
                out.put_f64_le(v);
            }
        }
    }
}

/// True when the kind's payload is fixed-width and fits the stack
/// scratch; the administrative variants carry vectors and take the
/// heap-buffer framing path instead.
fn fits_stack_frame(kind: &EventKind) -> bool {
    !matches!(kind, EventKind::ObjectiveImported { .. } | EventKind::OutcomeObserved { .. })
}

fn need(buf: &impl Buf, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(SpaError::Corrupt(format!("payload truncated reading {what}")));
    }
    Ok(())
}

/// Deserializes one event from an owned payload buffer. Thin wrapper
/// over [`decode_event_slice`] for callers that already hold a
/// [`Bytes`]; the hot replay path decodes borrowed slices instead.
pub fn decode_event(buf: Bytes) -> Result<LifeLogEvent> {
    decode_event_slice(&buf)
}

/// Deserializes one event from a borrowed payload produced by
/// [`encode_event`] — no copy, no allocation: the frame decoder and
/// replay hand segment-buffer slices straight in.
pub fn decode_event_slice(mut buf: &[u8]) -> Result<LifeLogEvent> {
    need(&buf, 4 + 8 + 1, "header")?;
    let user = UserId::new(buf.get_u32_le());
    let at = Timestamp::from_millis(buf.get_u64_le());
    let tag = buf.get_u8();
    let opt = |raw: u32| if raw == NONE_SENTINEL { None } else { Some(raw) };
    let kind = match tag {
        TAG_ACTION => {
            need(&buf, 8, "action fields")?;
            EventKind::Action {
                action: ActionId::new(buf.get_u32_le()),
                course: opt(buf.get_u32_le()).map(CourseId::new),
            }
        }
        TAG_TRANSACTION => {
            need(&buf, 8, "transaction fields")?;
            EventKind::Transaction {
                course: CourseId::new(buf.get_u32_le()),
                campaign: opt(buf.get_u32_le()).map(CampaignId::new),
            }
        }
        TAG_RATING => {
            need(&buf, 5, "rating fields")?;
            EventKind::Rating { course: CourseId::new(buf.get_u32_le()), stars: buf.get_u8() }
        }
        TAG_EIT_ANSWER => {
            need(&buf, 12, "eit answer fields")?;
            EventKind::EitAnswer {
                question: QuestionId::new(buf.get_u32_le()),
                answer: Valence::new(buf.get_f64_le()),
            }
        }
        TAG_EIT_SKIPPED => {
            need(&buf, 4, "eit skipped fields")?;
            EventKind::EitSkipped { question: QuestionId::new(buf.get_u32_le()) }
        }
        TAG_DELIVERED => {
            need(&buf, 4, "delivered fields")?;
            EventKind::MessageDelivered { campaign: CampaignId::new(buf.get_u32_le()) }
        }
        TAG_OPENED => {
            need(&buf, 4, "opened fields")?;
            EventKind::MessageOpened { campaign: CampaignId::new(buf.get_u32_le()) }
        }
        TAG_OBJECTIVE => {
            need(&buf, 4, "objective count")?;
            let count = buf.get_u32_le() as usize;
            if count > MAX_OBJECTIVE_VALUES {
                return Err(SpaError::Corrupt(format!(
                    "objective import of {count} values exceeds cap {MAX_OBJECTIVE_VALUES}"
                )));
            }
            need(&buf, count * 8, "objective values")?;
            let values = (0..count).map(|_| buf.get_f64_le()).collect();
            EventKind::ObjectiveImported { values }
        }
        TAG_IGNORED => {
            need(&buf, 4, "ignored fields")?;
            EventKind::CampaignIgnored { campaign: CampaignId::new(buf.get_u32_le()) }
        }
        TAG_OUTCOME => {
            need(&buf, 1 + 4 + 4, "outcome header")?;
            let responded = match buf.get_u8() {
                0 => false,
                1 => true,
                other => return Err(SpaError::Corrupt(format!("outcome responded byte {other}"))),
            };
            let dim = buf.get_u32_le();
            let count = buf.get_u32_le() as usize;
            if count > MAX_OUTCOME_NNZ {
                return Err(SpaError::Corrupt(format!(
                    "outcome row of {count} entries exceeds cap {MAX_OUTCOME_NNZ}"
                )));
            }
            need(&buf, count * 12, "outcome row")?;
            let indices: Vec<u32> = (0..count).map(|_| buf.get_u32_le()).collect();
            let values: Vec<f64> = (0..count).map(|_| buf.get_f64_le()).collect();
            if indices.windows(2).any(|w| w[0] >= w[1]) {
                return Err(SpaError::Corrupt("outcome row indices not sorted".into()));
            }
            if indices.last().is_some_and(|&i| i >= dim) {
                return Err(SpaError::Corrupt("outcome row index out of dimension".into()));
            }
            EventKind::OutcomeObserved { responded, dim, indices, values }
        }
        other => return Err(SpaError::Corrupt(format!("unknown event tag {other}"))),
    };
    if buf.has_remaining() {
        return Err(SpaError::Corrupt(format!("{} trailing bytes after event", buf.remaining())));
    }
    Ok(LifeLogEvent::new(user, at, kind))
}

/// Writes a full frame (length, crc, payload) for one event. The frame
/// is assembled in a fixed stack buffer ([`FrameScratch`]) — an 8-byte
/// header placeholder, the payload, then the backfilled length and CRC
/// — and lands in `out` as one append. Zero heap traffic per frame,
/// and the byte stream is identical to the payload-then-prefix
/// formulation.
pub fn encode_frame(event: &LifeLogEvent, out: &mut BytesMut) {
    if fits_stack_frame(&event.kind) {
        let mut frame = FrameScratch::new();
        frame.put_u32_le(0); // length, backfilled below
        frame.put_u32_le(0); // crc, backfilled below
        encode_event(event, &mut frame);
        let payload_len = (frame.len - 8) as u32;
        let crc = crc32(&frame.buf[8..frame.len]);
        frame.buf[0..4].copy_from_slice(&payload_len.to_le_bytes());
        frame.buf[4..8].copy_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(frame.as_slice());
    } else {
        // Variable-width payload: assemble directly in the output
        // buffer and backfill the header in place. Same byte stream as
        // the stack path, just without the 64-byte ceiling.
        let start = out.len();
        out.put_u32_le(0); // length, backfilled below
        out.put_u32_le(0); // crc, backfilled below
        encode_event(event, out);
        let payload_len = (out.len() - start - 8) as u32;
        debug_assert!(payload_len <= MAX_PAYLOAD, "event payload exceeds frame cap");
        let crc = crc32(&out[start + 8..]);
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    }
}

/// Outcome of attempting to read one frame from a buffer.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete, checksum-valid event, plus bytes consumed.
    Event(LifeLogEvent, usize),
    /// The buffer ends mid-frame (normal at the tail of a segment that
    /// was being written during a crash).
    Incomplete,
}

/// Maximum payload size accepted by the decoder; anything larger is
/// treated as corruption (the widest legal event — a full outcome row
/// at [`MAX_OUTCOME_NNZ`] entries — stays comfortably under this).
pub const MAX_PAYLOAD: u32 = 4096;

/// Tries to decode one frame from the front of `buf`.
pub fn decode_frame(buf: &[u8]) -> Result<FrameRead> {
    if buf.len() < 8 {
        return Ok(FrameRead::Incomplete);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_PAYLOAD {
        return Err(SpaError::Corrupt(format!("frame length {len} exceeds cap {MAX_PAYLOAD}")));
    }
    let crc_expect = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = 8 + len as usize;
    if buf.len() < total {
        return Ok(FrameRead::Incomplete);
    }
    let payload = &buf[8..total];
    let crc_actual = crc32(payload);
    if crc_actual != crc_expect {
        return Err(SpaError::Corrupt(format!(
            "checksum mismatch: stored {crc_expect:#010x}, computed {crc_actual:#010x}"
        )));
    }
    let event = decode_event_slice(payload)?;
    Ok(FrameRead::Event(event, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<LifeLogEvent> {
        vec![
            LifeLogEvent::new(
                UserId::new(1),
                Timestamp::from_millis(100),
                EventKind::Action { action: ActionId::new(7), course: Some(CourseId::new(3)) },
            ),
            LifeLogEvent::new(
                UserId::new(2),
                Timestamp::from_millis(200),
                EventKind::Action { action: ActionId::new(8), course: None },
            ),
            LifeLogEvent::new(
                UserId::new(3),
                Timestamp::from_millis(300),
                EventKind::Transaction {
                    course: CourseId::new(4),
                    campaign: Some(CampaignId::new(1)),
                },
            ),
            LifeLogEvent::new(
                UserId::new(4),
                Timestamp::from_millis(400),
                EventKind::Rating { course: CourseId::new(5), stars: 4 },
            ),
            LifeLogEvent::new(
                UserId::new(5),
                Timestamp::from_millis(500),
                EventKind::EitAnswer { question: QuestionId::new(9), answer: Valence::new(-0.5) },
            ),
            LifeLogEvent::new(
                UserId::new(6),
                Timestamp::from_millis(600),
                EventKind::EitSkipped { question: QuestionId::new(10) },
            ),
            LifeLogEvent::new(
                UserId::new(7),
                Timestamp::from_millis(700),
                EventKind::MessageDelivered { campaign: CampaignId::new(2) },
            ),
            LifeLogEvent::new(
                UserId::new(8),
                Timestamp::from_millis(800),
                EventKind::MessageOpened { campaign: CampaignId::new(2) },
            ),
            LifeLogEvent::new(
                UserId::new(9),
                Timestamp::from_millis(900),
                EventKind::ObjectiveImported { values: vec![0.25, -0.5, 1.0] },
            ),
            LifeLogEvent::new(
                UserId::new(10),
                Timestamp::from_millis(1000),
                EventKind::ObjectiveImported { values: vec![] },
            ),
            LifeLogEvent::new(
                UserId::new(11),
                Timestamp::from_millis(1100),
                EventKind::CampaignIgnored { campaign: CampaignId::new(3) },
            ),
            LifeLogEvent::new(
                UserId::new(12),
                Timestamp::from_millis(1200),
                EventKind::OutcomeObserved {
                    responded: true,
                    dim: 115,
                    indices: vec![0, 7, 114],
                    values: vec![0.1, -0.9, 0.5],
                },
            ),
            LifeLogEvent::new(
                UserId::new(13),
                Timestamp::from_millis(1300),
                EventKind::OutcomeObserved {
                    responded: false,
                    dim: 115,
                    indices: vec![],
                    values: vec![],
                },
            ),
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926, "standard check value");
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in sample_events() {
            let mut payload = BytesMut::new();
            encode_event(&event, &mut payload);
            let decoded = decode_event(payload.freeze()).unwrap();
            assert_eq!(decoded, event);
        }
    }

    #[test]
    fn frames_round_trip() {
        for event in sample_events() {
            let mut buf = BytesMut::new();
            encode_frame(&event, &mut buf);
            match decode_frame(&buf).unwrap() {
                FrameRead::Event(decoded, consumed) => {
                    assert_eq!(decoded, event);
                    assert_eq!(consumed, buf.len());
                }
                FrameRead::Incomplete => panic!("complete frame reported incomplete"),
            }
        }
    }

    #[test]
    fn truncated_frames_are_incomplete_not_errors() {
        let mut buf = BytesMut::new();
        encode_frame(&sample_events()[0], &mut buf);
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut]) {
                Ok(FrameRead::Incomplete) => {}
                other => panic!("cut at {cut}: expected Incomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bit_is_detected() {
        let mut buf = BytesMut::new();
        encode_frame(&sample_events()[2], &mut buf);
        let mut bytes = buf.to_vec();
        // flip one payload bit
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(decode_frame(&bytes), Err(SpaError::Corrupt(_))));
    }

    /// The CRC safety property, exhaustively: flip every single bit of
    /// every byte of every event kind's frame — the decoder must never
    /// silently hand back an event. (A flip in the length field may
    /// legitimately read as an incomplete frame; a flip anywhere else
    /// must be a loud checksum/decode error. "Decoded fine" is the one
    /// outcome that is never acceptable.)
    #[test]
    fn every_flipped_bit_is_never_silently_decoded() {
        for event in sample_events() {
            let mut buf = BytesMut::new();
            encode_frame(&event, &mut buf);
            let clean = buf.to_vec();
            for position in 0..clean.len() {
                for bit in 0..8u8 {
                    let mut corrupted = clean.clone();
                    corrupted[position] ^= 1 << bit;
                    match decode_frame(&corrupted) {
                        Ok(FrameRead::Event(decoded, _)) => panic!(
                            "flipping bit {bit} of byte {position} in a {} frame silently \
                             decoded as {decoded:?}",
                            event.kind.tag()
                        ),
                        Ok(FrameRead::Incomplete) => assert!(
                            position < 4,
                            "only a length-field flip may read as incomplete \
                             (byte {position}, bit {bit})"
                        ),
                        Err(SpaError::Corrupt(_)) => {}
                        Err(e) => panic!("unexpected error kind: {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn absurd_length_is_corruption() {
        let mut bytes = vec![0u8; 16];
        bytes[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(SpaError::Corrupt(_))));
    }

    #[test]
    fn unknown_tag_is_corruption() {
        let mut payload = BytesMut::new();
        payload.put_u32_le(1);
        payload.put_u64_le(2);
        payload.put_u8(99);
        assert!(matches!(decode_event(payload.freeze()), Err(SpaError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut payload = BytesMut::new();
        encode_event(&sample_events()[5], &mut payload);
        payload.put_u8(0);
        assert!(matches!(decode_event(payload.freeze()), Err(SpaError::Corrupt(_))));
    }

    #[test]
    fn outcome_row_structural_corruption_is_loud() {
        // Hand-craft payloads whose CRC would pass (we feed the payload
        // decoder directly): the structural guards must still reject.
        let craft = |count: u32, indices: &[u32], dim: u32| {
            let mut payload = BytesMut::new();
            payload.put_u32_le(1); // user
            payload.put_u64_le(2); // at
            payload.put_u8(10); // TAG_OUTCOME
            payload.put_u8(1); // responded
            payload.put_u32_le(dim);
            payload.put_u32_le(count);
            for &i in indices {
                payload.put_u32_le(i);
            }
            for _ in indices {
                payload.put_f64_le(0.5);
            }
            payload
        };
        // unsorted indices
        let bad = craft(2, &[5, 3], 10);
        assert!(matches!(decode_event(bad.freeze()), Err(SpaError::Corrupt(_))));
        // index out of dimension
        let bad = craft(2, &[3, 10], 10);
        assert!(matches!(decode_event(bad.freeze()), Err(SpaError::Corrupt(_))));
        // count over cap never allocates
        let bad = craft(1_000_000, &[], 10);
        assert!(matches!(decode_event(bad.freeze()), Err(SpaError::Corrupt(_))));
        // responded byte outside {0, 1}
        let mut bad = craft(1, &[3], 10);
        bad[13] = 7;
        assert!(matches!(decode_event(bad.freeze()), Err(SpaError::Corrupt(_))));
        // the well-formed control decodes
        let good = craft(2, &[3, 5], 10);
        assert!(decode_event(good.freeze()).is_ok());
    }

    #[test]
    fn objective_count_over_cap_is_corruption() {
        let mut payload = BytesMut::new();
        payload.put_u32_le(1);
        payload.put_u64_le(2);
        payload.put_u8(8); // TAG_OBJECTIVE
        payload.put_u32_le(1_000_000);
        assert!(matches!(decode_event(payload.freeze()), Err(SpaError::Corrupt(_))));
    }

    #[test]
    fn truncated_payload_is_corruption() {
        let mut payload = BytesMut::new();
        encode_event(&sample_events()[0], &mut payload);
        let short = payload.freeze().slice(0..14);
        assert!(matches!(decode_event(short), Err(SpaError::Corrupt(_))));
    }
}
