//! # spa-store — LifeLog storage substrate
//!
//! The paper's SPA platform "exploits heterogeneous, multi-dimensional
//! and massive databases to extract, pre-process and deliver distilled
//! user LifeLogs" (§4), with WebLogs arriving at ≈50 GB/month (§5.1).
//! This crate provides the embedded storage layer that plays that role
//! in the reproduction:
//!
//! * [`log`] — a durable, append-only, segmented **event log** holding
//!   raw [`spa_types::LifeLogEvent`] records behind a CRC-checked binary
//!   framing ([`codec`]); replayable from the start, tolerant of a
//!   truncated tail (crash during append);
//! * [`profile`] — a sharded, concurrently readable **profile store**
//!   mapping users to their attribute-value vectors, with snapshot
//!   save/load;
//! * [`index`] — a secondary **sensibility index** (attribute → users
//!   above a threshold) used by the Attributes Manager;
//! * [`shard_log`] — **per-shard** event-log handles under one root
//!   directory with a manifest, backing the sharded serving platform;
//! * [`snapshot`] — versioned, checksummed, atomically written
//!   **state snapshots** covering a [`log::LogPosition`], so recovery
//!   loads a checkpoint and replays only the log tail behind it
//!   (bounded-time recovery) and covered segments can be compacted
//!   away;
//! * [`csv`] — plain-text import/export for datasets and reports;
//! * [`fault`] — a deterministic **storage fault-injection** seam
//!   ([`StorageIo`]) with a seeded [`FaultPlan`], so chaos harnesses
//!   can prove the recovery machinery against torn writes, fsync
//!   failures, transient `EIO` and read-side bit rot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod csv;
pub mod fault;
pub mod index;
pub mod log;
pub mod profile;
pub mod shard_log;
pub mod snapshot;

pub use fault::{FaultCounts, FaultLedger, FaultPlan, FaultPlanConfig, RealIo, StorageIo};
pub use index::SensibilityIndex;
pub use log::{
    CompactionStats, EventLog, LogPosition, LogStats, ReplayIter, ReplayOutcome, TornTail,
    WriteFaultCounters,
};
pub use profile::{ProfileStore, UserProfile};
pub use shard_log::ShardedEventLog;
pub use snapshot::{Snapshot, SnapshotBuilder};
