//! Append-only, segmented event log.
//!
//! LifeLog events arrive as a continuous stream ("the continuous storage
//! of raw information streams", §4). The log stores them in numbered
//! segment files (`segment-0000000000.log`, …), rolling to a new segment
//! once the active one exceeds a size threshold. Each record is framed
//! with a length and CRC ([`crate::codec`]), so replay detects both bit
//! rot (error) and a torn tail write (silently truncated, like a WAL
//! recovery).

use crate::codec::{decode_frame, encode_frame, FrameRead};
use bytes::BytesMut;
use parking_lot::Mutex;
use spa_types::{LifeLogEvent, Result, SpaError};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Configuration for an [`EventLog`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Roll to a new segment after the active one reaches this many
    /// bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Call `sync_all` on segment roll and explicit flushes.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self { segment_bytes: 8 * 1024 * 1024, fsync: false }
    }
}

/// Aggregate statistics of a log directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Number of segment files.
    pub segments: usize,
    /// Total bytes across segments.
    pub bytes: u64,
    /// Events successfully appended (writer-side counter).
    pub events_appended: u64,
}

struct Writer {
    file: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    events_appended: u64,
    scratch: BytesMut,
}

/// A durable, append-only LifeLog event store over a directory of
/// segment files. Appends are serialized behind a mutex; replay opens
/// the segments independently of the writer.
pub struct EventLog {
    dir: PathBuf,
    config: LogConfig,
    writer: Mutex<Writer>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:010}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(idx) = name.strip_prefix("segment-").and_then(|r| r.strip_suffix(".log")) {
            if let Ok(index) = idx.parse::<u64>() {
                segments.push((index, path));
            }
        }
    }
    segments.sort_by_key(|&(i, _)| i);
    Ok(segments)
}

impl EventLog {
    /// Opens (creating if needed) a log in `dir`. Appends continue into
    /// the highest existing segment.
    pub fn open(dir: impl Into<PathBuf>, config: LogConfig) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let (segment_index, existing_bytes) = match segments.last() {
            Some((idx, path)) => (*idx, fs::metadata(path)?.len()),
            None => (0, 0),
        };
        let file =
            OpenOptions::new().create(true).append(true).open(segment_path(&dir, segment_index))?;
        Ok(Self {
            dir,
            config,
            writer: Mutex::new(Writer {
                file: BufWriter::new(file),
                segment_index,
                segment_bytes: existing_bytes,
                events_appended: 0,
                scratch: BytesMut::with_capacity(64),
            }),
        })
    }

    /// Opens with default configuration.
    pub fn open_default(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open(dir, LogConfig::default())
    }

    /// Appends one event, rolling the segment when full.
    pub fn append(&self, event: &LifeLogEvent) -> Result<()> {
        let mut w = self.writer.lock();
        w.scratch.clear();
        encode_frame(event, &mut w.scratch);
        let frame_len = w.scratch.len() as u64;
        if w.segment_bytes > 0 && w.segment_bytes + frame_len > self.config.segment_bytes {
            self.roll_locked(&mut w)?;
        }
        let frame = w.scratch.split().freeze();
        w.file.write_all(&frame)?;
        w.segment_bytes += frame_len;
        w.events_appended += 1;
        Ok(())
    }

    /// Appends a batch of events (one lock acquisition).
    pub fn append_batch<'a>(
        &self,
        events: impl IntoIterator<Item = &'a LifeLogEvent>,
    ) -> Result<usize> {
        let mut w = self.writer.lock();
        let mut appended = 0usize;
        for event in events {
            w.scratch.clear();
            encode_frame(event, &mut w.scratch);
            let frame_len = w.scratch.len() as u64;
            if w.segment_bytes > 0 && w.segment_bytes + frame_len > self.config.segment_bytes {
                self.roll_locked(&mut w)?;
            }
            let frame = w.scratch.split().freeze();
            w.file.write_all(&frame)?;
            w.segment_bytes += frame_len;
            w.events_appended += 1;
            appended += 1;
        }
        Ok(appended)
    }

    fn roll_locked(&self, w: &mut Writer) -> Result<()> {
        w.file.flush()?;
        if self.config.fsync {
            w.file.get_ref().sync_all()?;
        }
        w.segment_index += 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, w.segment_index))?;
        w.file = BufWriter::new(file);
        w.segment_bytes = 0;
        Ok(())
    }

    /// Flushes buffered appends to the OS (and disk when `fsync`).
    pub fn flush(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.file.flush()?;
        if self.config.fsync {
            w.file.get_ref().sync_all()?;
        }
        Ok(())
    }

    /// Statistics over the on-disk segments (flush first for an exact
    /// byte count).
    pub fn stats(&self) -> Result<LogStats> {
        let segments = list_segments(&self.dir)?;
        let mut bytes = 0;
        for (_, path) in &segments {
            bytes += fs::metadata(path)?.len();
        }
        let events_appended = self.writer.lock().events_appended;
        Ok(LogStats { segments: segments.len(), bytes, events_appended })
    }

    /// Replays every intact event in segment order, stopping silently at
    /// a torn tail in the *last* segment (crash recovery semantics) but
    /// failing loudly on mid-log corruption.
    pub fn replay(&self) -> Result<Vec<LifeLogEvent>> {
        self.flush()?;
        Self::replay_dir(&self.dir)
    }

    /// Replays a log directory without an open writer.
    pub fn replay_dir(dir: impl AsRef<Path>) -> Result<Vec<LifeLogEvent>> {
        let segments = list_segments(dir.as_ref())?;
        let mut events = Vec::new();
        let last = segments.len().saturating_sub(1);
        for (seg_pos, (_, path)) in segments.iter().enumerate() {
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            let mut offset = 0usize;
            while offset < buf.len() {
                match decode_frame(&buf[offset..]) {
                    Ok(FrameRead::Event(event, consumed)) => {
                        events.push(event);
                        offset += consumed;
                    }
                    Ok(FrameRead::Incomplete) => {
                        if seg_pos == last {
                            // torn tail write — recoverable
                            break;
                        }
                        return Err(SpaError::Corrupt(format!(
                            "segment {} truncated mid-log at offset {offset}",
                            path.display()
                        )));
                    }
                    Err(e) => {
                        return Err(SpaError::Corrupt(format!(
                            "segment {} offset {offset}: {e}",
                            path.display()
                        )))
                    }
                }
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_types::{ActionId, EventKind, Timestamp, UserId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(i: u32) -> LifeLogEvent {
        LifeLogEvent::new(
            UserId::new(i),
            Timestamp::from_millis(i as u64 * 10),
            EventKind::Action { action: ActionId::new(i % 984), course: None },
        )
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let log = EventLog::open_default(&dir).unwrap();
        let events: Vec<_> = (0..100).map(event).collect();
        for e in &events {
            log.append(e).unwrap();
        }
        assert_eq!(log.replay().unwrap(), events);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_counts() {
        let dir = tmp_dir("batch");
        let log = EventLog::open_default(&dir).unwrap();
        let events: Vec<_> = (0..50).map(event).collect();
        assert_eq!(log.append_batch(events.iter()).unwrap(), 50);
        assert_eq!(log.replay().unwrap().len(), 50);
        assert_eq!(log.stats().unwrap().events_appended, 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = tmp_dir("roll");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        for i in 0..100 {
            log.append(&event(i)).unwrap();
        }
        log.flush().unwrap();
        let stats = log.stats().unwrap();
        assert!(stats.segments > 1, "expected multiple segments, got {}", stats.segments);
        assert_eq!(log.replay().unwrap().len(), 100, "roll must not lose events");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_appending() {
        let dir = tmp_dir("reopen");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 10..20 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
            let replayed = log.replay().unwrap();
            assert_eq!(replayed.len(), 20);
            assert_eq!(replayed[19], event(19));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_recovered_silently() {
        let dir = tmp_dir("torn");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        // truncate the (single) segment mid-frame
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        let events = EventLog::replay_dir(&dir).unwrap();
        assert_eq!(events.len(), 9, "the torn final event is dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_loud() {
        let dir = tmp_dir("midcorrupt");
        let config = LogConfig { segment_bytes: 128, fsync: false };
        {
            let log = EventLog::open(&dir, config).unwrap();
            for i in 0..40 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        // truncate the FIRST segment so an earlier segment ends mid-frame
        let first = list_segments(&dir).unwrap()[0].1.clone();
        let len = fs::metadata(&first).unwrap().len();
        OpenOptions::new().write(true).open(&first).unwrap().set_len(len - 2).unwrap();
        assert!(matches!(EventLog::replay_dir(&dir), Err(SpaError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_on_replay() {
        let dir = tmp_dir("bitflip");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..5 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let seg = list_segments(&dir).unwrap()[0].1.clone();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[12] ^= 0xFF; // somewhere inside the first payload
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(EventLog::replay_dir(&dir), Err(SpaError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_log_replays_empty() {
        let dir = tmp_dir("empty");
        let log = EventLog::open_default(&dir).unwrap();
        assert!(log.replay().unwrap().is_empty());
        let stats = log.stats().unwrap();
        assert_eq!(stats.events_appended, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_are_all_stored() {
        let dir = tmp_dir("concurrent");
        let log = std::sync::Arc::new(EventLog::open_default(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    log.append(&event(t * 1000 + i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.replay().unwrap().len(), 1000);
        let _ = fs::remove_dir_all(&dir);
    }
}
