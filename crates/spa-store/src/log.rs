//! Append-only, segmented event log.
//!
//! LifeLog events arrive as a continuous stream ("the continuous storage
//! of raw information streams", §4). The log stores them in numbered
//! segment files (`segment-0000000000.log`, …), rolling to a new segment
//! once the active one exceeds a size threshold. Each record is framed
//! with a length and CRC ([`crate::codec`]), so replay detects both bit
//! rot (error) and a torn tail write (silently truncated, like a WAL
//! recovery).

use crate::codec::{decode_frame, encode_frame, FrameRead};
use crate::fault::{
    injected_error, real_io, StorageIo, WriteFault, INJECTED_FSYNC_FAILURE, INJECTED_TORN_WRITE,
    INJECTED_TRANSIENT_EIO,
};
use bytes::BytesMut;
use parking_lot::Mutex;
use spa_types::{LifeLogEvent, Result, SpaError};
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How many transient write faults the append path absorbs per write
/// before giving up and poisoning the log. A transient fault leaves the
/// file untouched, so re-attempting is always sound; bounding the
/// retries keeps a persistently failing device from hanging ingest.
pub const WRITE_RETRY_LIMIT: u32 = 4;

/// Base backoff between transient-write retries, in microseconds
/// (doubled per successive retry of the same write).
pub const WRITE_RETRY_BACKOFF_US: u64 = 20;

/// Write-path fault accounting for one log: how the bounded retry
/// policy disposed of transient write faults. All zero under
/// production I/O ([`crate::fault::RealIo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteFaultCounters {
    /// Transient write faults absorbed by in-place retries (the write
    /// eventually landed; callers never saw an error).
    pub transients_absorbed: u64,
    /// Transient write faults in bursts that exhausted
    /// [`WRITE_RETRY_LIMIT`] and poisoned the log.
    pub transients_fatal: u64,
    /// Writes that succeeded only after at least one retry.
    pub writes_recovered: u64,
}

impl WriteFaultCounters {
    /// Component-wise sum (for aggregating shards).
    pub fn accumulate(&mut self, other: WriteFaultCounters) {
        self.transients_absorbed += other.transients_absorbed;
        self.transients_fatal += other.transients_fatal;
        self.writes_recovered += other.writes_recovered;
    }
}

/// Configuration for an [`EventLog`].
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Roll to a new segment after the active one reaches this many
    /// bytes (default 8 MiB).
    pub segment_bytes: u64,
    /// Call `sync_all` on segment roll and explicit flushes.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self { segment_bytes: 8 * 1024 * 1024, fsync: false }
    }
}

/// Aggregate statistics of a log directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Number of segment files.
    pub segments: usize,
    /// Total bytes across segments.
    pub bytes: u64,
    /// Events successfully appended (writer-side counter).
    pub events_appended: u64,
}

/// A durable position in a segmented log: the byte `offset` within
/// segment `segment` where the next frame will begin. Positions are
/// recorded by [`EventLog::flushed_position`] (always on a frame
/// boundary), stored inside snapshots ([`crate::snapshot`]), and
/// consumed by [`EventLog::replay_iter_from`] (replay the tail after a
/// checkpoint) and [`EventLog::compact_before`] (delete fully covered
/// segments). Ordered by `(segment, offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogPosition {
    /// Segment index the position points into.
    pub segment: u64,
    /// Byte offset within that segment (frame boundary).
    pub offset: u64,
}

impl std::fmt::Display for LogPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.segment, self.offset)
    }
}

/// What [`EventLog::compact_before`] removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Segment files deleted (every one strictly below the position's
    /// segment index).
    pub segments_deleted: usize,
    /// Bytes those segments held.
    pub bytes_reclaimed: u64,
}

/// Where a replay found the final segment cut off mid-frame — the
/// signature of a crash during an append. Everything before `offset`
/// decoded cleanly; the bytes from `offset` to the end of the segment
/// are an unfinished frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Index of the (last) segment holding the partial frame.
    pub segment: u64,
    /// Byte offset of the first torn byte within that segment.
    pub offset: u64,
    /// How many trailing bytes the partial frame occupies.
    pub bytes_dropped: u64,
}

/// Result of a replay: the intact events plus whether (and where) the
/// tail was torn. [`EventLog::replay`] discards this detail; recovery
/// paths ([`EventLog::open_recover`]) act on it.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every fully framed, checksum-valid event, in append order.
    pub events: Vec<LifeLogEvent>,
    /// `Some` when the final segment ended mid-frame.
    pub torn_tail: Option<TornTail>,
}

struct Writer {
    file: BufWriter<File>,
    segment_index: u64,
    segment_bytes: u64,
    events_appended: u64,
    io_counters: WriteFaultCounters,
    scratch: BytesMut,
    /// Frame accumulator for batch appends: frames are encoded
    /// **directly into this buffer** (no per-event scratch round-trip)
    /// and whole batches — up to a segment roll — land in one
    /// `write_all` instead of one per event.
    batch: BytesMut,
    /// Set after a failed frame write. The active segment may end in a
    /// torn frame, so accepting further appends would bury acknowledged
    /// events *behind* the tear — recovery truncates at the first torn
    /// frame and would silently discard them. Poisoned logs refuse all
    /// appends; reopen through recovery.
    poisoned: bool,
}

impl Writer {
    fn check_poisoned(&self) -> Result<()> {
        if self.poisoned {
            return Err(SpaError::Corrupt(
                "event log poisoned by an earlier write failure; reopen via recovery".into(),
            ));
        }
        Ok(())
    }

    /// Writes the first `upto` bytes of the accumulated batch in one
    /// call and retains the rest (a frame encoded past a segment
    /// boundary stays buffered for the next segment). A failure clears
    /// the buffer and poisons the writer (the segment may hold a torn
    /// frame) — rebuild via recovery, never retry frames.
    fn flush_batch_prefix(&mut self, io: &dyn StorageIo, upto: usize) -> Result<()> {
        if upto == 0 {
            return Ok(());
        }
        let result = write_guarded(&mut self.file, &mut self.io_counters, io, &self.batch[..upto]);
        if result.is_err() {
            self.batch.clear();
            self.poisoned = true;
        } else {
            let len = self.batch.len();
            if upto < len {
                self.batch.copy_within(upto.., 0);
            }
            self.batch.truncate(len - upto);
        }
        result.map_err(Into::into)
    }

    /// Writes the whole accumulated batch.
    fn flush_batch(&mut self, io: &dyn StorageIo) -> Result<()> {
        self.flush_batch_prefix(io, self.batch.len())
    }
}

/// One guarded physical write: consults the [`StorageIo`] seam before
/// the real `write_all`, applying the bounded transient-retry policy.
///
/// * A **transient** fault leaves the file untouched, so the write is
///   retried in place (short exponential backoff) up to
///   [`WRITE_RETRY_LIMIT`] times; exhaustion surfaces a loud error the
///   caller must treat like any failed write (poison).
/// * A **torn** fault is made physically real: previously buffered
///   frames are flushed first (they were acknowledged and must land
///   *before* the tear), then the fault's prefix of `bytes` is written
///   straight to the file, and an error is returned — the segment now
///   ends mid-frame exactly as a crash during `write(2)` would leave
///   it, and only recovery's torn-tail healing may touch it again.
fn write_guarded(
    file: &mut BufWriter<File>,
    counters: &mut WriteFaultCounters,
    io: &dyn StorageIo,
    bytes: &[u8],
) -> std::io::Result<()> {
    if bytes.is_empty() {
        return Ok(());
    }
    let mut transients = 0u32;
    loop {
        match io.write_fault(bytes.len()) {
            None => break,
            Some(WriteFault::Transient) => {
                transients += 1;
                if transients > WRITE_RETRY_LIMIT {
                    counters.transients_fatal += transients as u64;
                    return Err(injected_error(
                        INJECTED_TRANSIENT_EIO,
                        format!("persisted through {transients} write attempts"),
                    ));
                }
                std::thread::sleep(std::time::Duration::from_micros(
                    WRITE_RETRY_BACKOFF_US << (transients - 1).min(6),
                ));
            }
            Some(WriteFault::Torn { keep }) => {
                // Acknowledged frames buffered ahead of this write land
                // first, then the tear: a best-effort flush whose own
                // failure changes nothing (the log poisons either way).
                let _ = file.flush();
                let keep = keep.min(bytes.len());
                if keep > 0 {
                    // `&File` implements `Write`, so the partial frame
                    // bypasses the BufWriter and lands immediately.
                    let mut raw: &File = file.get_ref();
                    let _ = raw.write_all(&bytes[..keep]);
                }
                return Err(injected_error(
                    INJECTED_TORN_WRITE,
                    format!("{keep} of {} bytes landed", bytes.len()),
                ));
            }
        }
    }
    if transients > 0 {
        counters.transients_absorbed += transients as u64;
        counters.writes_recovered += 1;
    }
    file.write_all(bytes)
}

/// One guarded fsync: an injected fault fails the sync without calling
/// it — per fsyncgate semantics the durability of earlier writes is
/// then unknown, and the call site decides whether that poisons (mid-
/// append segment roll) or merely fails the operation loudly (an
/// explicit flush or checkpoint sync, where nothing was torn and the
/// caller simply did not get its durability point).
fn sync_guarded(io: &dyn StorageIo, file: &File) -> std::io::Result<()> {
    if io.fsync_fault() {
        return Err(injected_error(INJECTED_FSYNC_FAILURE, "sync_all failed".into()));
    }
    file.sync_all()
}

/// A durable, append-only LifeLog event store over a directory of
/// segment files. Appends are serialized behind a mutex; replay opens
/// the segments independently of the writer.
pub struct EventLog {
    dir: PathBuf,
    config: LogConfig,
    io: Arc<dyn StorageIo>,
    writer: Mutex<Writer>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("segment-{index:010}.log"))
}

/// Frame-walks one segment file and returns its clean length. A
/// partial frame at the tail is truncated off (the crash-during-append
/// signature); an invalid frame anywhere earlier is loud corruption.
fn heal_segment_tail(path: &Path) -> Result<u64> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut offset = 0usize;
    while offset < buf.len() {
        match decode_frame(&buf[offset..]) {
            Ok(FrameRead::Event(_, consumed)) => offset += consumed,
            Ok(FrameRead::Incomplete) => {
                OpenOptions::new().write(true).open(path)?.set_len(offset as u64)?;
                return Ok(offset as u64);
            }
            Err(e) => {
                return Err(SpaError::Corrupt(format!(
                    "segment {} offset {offset}: {e}",
                    path.display()
                )))
            }
        }
    }
    Ok(buf.len() as u64)
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(idx) = name.strip_prefix("segment-").and_then(|r| r.strip_suffix(".log")) {
            if let Ok(index) = idx.parse::<u64>() {
                segments.push((index, path));
            }
        }
    }
    segments.sort_by_key(|&(i, _)| i);
    Ok(segments)
}

impl EventLog {
    /// Opens (creating if needed) a log in `dir`. Appends continue into
    /// the highest existing segment.
    ///
    /// The active segment is frame-walked first: a torn partial frame
    /// at its tail (crash during an append) is truncated away, so new
    /// appends never bury garbage mid-segment where replay would
    /// mistake it for corruption. A checksum-invalid frame earlier in
    /// the segment is a loud [`SpaError::Corrupt`] instead.
    pub fn open(dir: impl Into<PathBuf>, config: LogConfig) -> Result<Self> {
        Self::open_with_io(dir, config, real_io())
    }

    /// [`EventLog::open`] with an explicit [`StorageIo`] seam: every
    /// physical write and fsync this log performs consults `io` first.
    /// Production callers use [`EventLog::open`] (a no-op seam); chaos
    /// harnesses pass a [`crate::fault::FaultPlan`]. The open itself
    /// (tail healing) always uses real I/O — injection starts with the
    /// first append.
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        config: LogConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = list_segments(&dir)?;
        let (segment_index, existing_bytes) = match segments.last() {
            Some((idx, path)) => (*idx, heal_segment_tail(path)?),
            None => (0, 0),
        };
        let file =
            OpenOptions::new().create(true).append(true).open(segment_path(&dir, segment_index))?;
        Ok(Self {
            dir,
            config,
            io,
            writer: Mutex::new(Writer {
                file: BufWriter::new(file),
                segment_index,
                segment_bytes: existing_bytes,
                events_appended: 0,
                io_counters: WriteFaultCounters::default(),
                scratch: BytesMut::with_capacity(64),
                batch: BytesMut::new(),
                poisoned: false,
            }),
        })
    }

    /// Opens with default configuration.
    pub fn open_default(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open(dir, LogConfig::default())
    }

    /// Appends one event, rolling the segment when full. The frame is
    /// encoded into the writer's scratch buffer and written from it
    /// directly — no per-append allocation.
    ///
    /// A failed write poisons the log (the active segment may end in a
    /// torn frame); every later append fails fast instead of burying
    /// acknowledged events behind the tear, where recovery's
    /// torn-tail truncation would silently discard them. Reopen
    /// through [`EventLog::open_recover`] / [`EventLog::open`].
    pub fn append(&self, event: &LifeLogEvent) -> Result<()> {
        let mut guard = self.writer.lock();
        let w = &mut *guard;
        w.check_poisoned()?;
        w.scratch.clear();
        encode_frame(event, &mut w.scratch);
        let frame_len = w.scratch.len() as u64;
        if w.segment_bytes > 0 && w.segment_bytes + frame_len > self.config.segment_bytes {
            if let Err(e) = self.roll_locked(w) {
                w.poisoned = true;
                return Err(e);
            }
        }
        if let Err(e) = write_guarded(&mut w.file, &mut w.io_counters, self.io.as_ref(), &w.scratch)
        {
            w.poisoned = true;
            return Err(e.into());
        }
        w.segment_bytes += frame_len;
        w.events_appended += 1;
        Ok(())
    }

    /// Appends a batch of events: one lock acquisition, and frames are
    /// accumulated and written **once per segment** rather than once
    /// per event (the grouped write is what keeps write-ahead
    /// durability cheap for the sharded platform's per-shard
    /// sub-batches). The byte stream produced is identical to
    /// appending each event individually.
    ///
    /// Like [`EventLog::append`], a write failure poisons the log —
    /// the returned count only reflects durably buffered frames up to
    /// the failure, and all later appends fail fast until the log is
    /// reopened through recovery.
    pub fn append_batch<'a>(
        &self,
        events: impl IntoIterator<Item = &'a LifeLogEvent>,
    ) -> Result<usize> {
        let mut guard = self.writer.lock();
        let w = &mut *guard;
        w.check_poisoned()?;
        let mut appended = 0usize;
        debug_assert!(w.batch.is_empty());
        for event in events {
            // frame straight into the accumulator; when the frame would
            // cross the segment boundary, flush everything before it,
            // roll, and let the frame open the new segment
            let start = w.batch.len();
            encode_frame(event, &mut w.batch);
            let frame_len = (w.batch.len() - start) as u64;
            if w.segment_bytes > 0 && w.segment_bytes + frame_len > self.config.segment_bytes {
                w.flush_batch_prefix(self.io.as_ref(), start)?;
                if let Err(e) = self.roll_locked(w) {
                    w.batch.clear();
                    w.poisoned = true;
                    return Err(e);
                }
            }
            w.segment_bytes += frame_len;
            w.events_appended += 1;
            appended += 1;
        }
        w.flush_batch(self.io.as_ref())?;
        Ok(appended)
    }

    /// Appends a batch of **pre-encoded frames** — the byte run a
    /// routing pass produced with [`crate::codec::encode_frame`] while
    /// each event was still hot in cache. Frames are written straight
    /// from `frames` (no copy into the writer's accumulator), split at
    /// segment-roll boundaries by walking the length headers. The byte
    /// stream and roll layout are identical to appending the same
    /// events through [`EventLog::append_batch`]. Returns the frame
    /// count.
    ///
    /// `frames` must be a well-formed concatenation of frames; a
    /// length header exceeding [`crate::codec::MAX_PAYLOAD`] or a
    /// truncated tail is a loud [`SpaError::Corrupt`] before anything
    /// is written. Write-failure poisoning matches
    /// [`EventLog::append_batch`].
    pub fn append_encoded(&self, frames: &[u8]) -> Result<usize> {
        // validation walk first (no allocation, headers stay cached),
        // so a malformed buffer is rejected before any byte lands
        let mut offset = 0usize;
        let mut frames_total = 0usize;
        while offset < frames.len() {
            if frames.len() - offset < 8 {
                return Err(SpaError::Corrupt(format!(
                    "pre-encoded batch ends mid-header at offset {offset}"
                )));
            }
            let len = u32::from_le_bytes(frames[offset..offset + 4].try_into().expect("4 bytes"));
            if len > crate::codec::MAX_PAYLOAD {
                return Err(SpaError::Corrupt(format!(
                    "pre-encoded frame at offset {offset} claims {len} payload bytes"
                )));
            }
            let total = 8 + len as usize;
            if frames.len() - offset < total {
                return Err(SpaError::Corrupt(format!(
                    "pre-encoded batch ends mid-frame at offset {offset}"
                )));
            }
            offset += total;
            frames_total += 1;
        }
        let mut guard = self.writer.lock();
        let w = &mut *guard;
        w.check_poisoned()?;
        let mut written = 0usize; // bytes of `frames` already on disk
        let mut cursor = 0usize; // start of the frame under consideration
        while cursor < frames.len() {
            let len = u32::from_le_bytes(frames[cursor..cursor + 4].try_into().expect("4 bytes"));
            let frame_len = 8 + len as u64;
            if w.segment_bytes > 0 && w.segment_bytes + frame_len > self.config.segment_bytes {
                if let Err(e) = write_guarded(
                    &mut w.file,
                    &mut w.io_counters,
                    self.io.as_ref(),
                    &frames[written..cursor],
                ) {
                    w.poisoned = true;
                    return Err(e.into());
                }
                written = cursor;
                if let Err(e) = self.roll_locked(w) {
                    w.poisoned = true;
                    return Err(e);
                }
            }
            w.segment_bytes += frame_len;
            w.events_appended += 1;
            cursor += frame_len as usize;
        }
        if let Err(e) =
            write_guarded(&mut w.file, &mut w.io_counters, self.io.as_ref(), &frames[written..])
        {
            w.poisoned = true;
            return Err(e.into());
        }
        Ok(frames_total)
    }

    fn roll_locked(&self, w: &mut Writer) -> Result<()> {
        w.file.flush()?;
        if self.config.fsync {
            sync_guarded(self.io.as_ref(), w.file.get_ref())?;
        }
        w.segment_index += 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, w.segment_index))?;
        w.file = BufWriter::new(file);
        w.segment_bytes = 0;
        Ok(())
    }

    /// Flushes buffered appends to the OS (and disk when `fsync`). A
    /// failed (or injected) fsync here is loud but does **not** poison:
    /// no frame was torn — the caller merely did not get its durability
    /// point and may retry the flush.
    pub fn flush(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.file.flush()?;
        if self.config.fsync {
            sync_guarded(self.io.as_ref(), w.file.get_ref())?;
        }
        Ok(())
    }

    /// Write-path fault accounting for this log (see
    /// [`WriteFaultCounters`]); zeroes under production I/O.
    pub fn write_fault_counters(&self) -> WriteFaultCounters {
        self.writer.lock().io_counters
    }

    /// Flushes, then returns the writer's current position — the frame
    /// boundary where the next append will land. Everything before this
    /// position is on disk (through the OS; through the platter when
    /// `fsync`), which is what makes it safe to record inside a
    /// checkpoint as "the log prefix this snapshot covers".
    pub fn flushed_position(&self) -> Result<LogPosition> {
        let mut w = self.writer.lock();
        w.file.flush()?;
        if self.config.fsync {
            sync_guarded(self.io.as_ref(), w.file.get_ref())?;
        }
        Ok(LogPosition { segment: w.segment_index, offset: w.segment_bytes })
    }

    /// The writer's current frame boundary **without any I/O** — the
    /// position accounts for buffered-but-unflushed appends. Use when a
    /// caller needs the position while holding a latency-sensitive lock
    /// and will make the prefix durable with [`EventLog::sync_up_to`]
    /// *before* acting on it (a checkpoint must sync before registering
    /// the snapshot).
    pub fn buffered_position(&self) -> LogPosition {
        let w = self.writer.lock();
        LogPosition { segment: w.segment_index, offset: w.segment_bytes }
    }

    /// Makes the log durable up to `position` **regardless of the
    /// `fsync` configuration**: flushes the writer, then fsyncs the
    /// position's segment file by path (the writer may have rolled past
    /// it since the position was recorded).
    ///
    /// A checkpoint must call this before registering `position` in the
    /// manifest. The snapshot and manifest writes are always fsynced;
    /// if the WAL bytes they point at stayed in the page cache, a power
    /// loss after compaction would leave a durable registration whose
    /// offset lies beyond the surviving segment — permanently
    /// unrecoverable, even though the snapshot holds all covered state.
    /// One extra fsync per checkpoint closes that window without
    /// imposing per-append fsync costs.
    pub fn sync_up_to(&self, position: LogPosition) -> Result<()> {
        self.flush()?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(segment_path(&self.dir, position.segment))?;
        sync_guarded(self.io.as_ref(), &file)?;
        Ok(())
    }

    /// Deletes every segment file strictly below `position.segment` —
    /// they are fully covered by a snapshot taken at `position`, so
    /// replay will never need them again. The position's own segment is
    /// always kept (replay resumes inside it at `position.offset`).
    /// Safe to call while the log is open for appending: only closed,
    /// older segments are removed.
    pub fn compact_before(&self, position: LogPosition) -> Result<CompactionStats> {
        Self::compact_dir_before(&self.dir, position)
    }

    /// [`EventLog::compact_before`] for a directory without an open
    /// writer (the recovery-tooling form).
    pub fn compact_dir_before(
        dir: impl AsRef<Path>,
        position: LogPosition,
    ) -> Result<CompactionStats> {
        let mut stats = CompactionStats::default();
        for (index, path) in list_segments(dir.as_ref())? {
            if index < position.segment {
                stats.bytes_reclaimed += fs::metadata(&path)?.len();
                fs::remove_file(&path)?;
                stats.segments_deleted += 1;
            }
        }
        Ok(stats)
    }

    /// Lowest segment index present in a log directory (`None` for an
    /// empty directory). `Some(0)` means the full history survives —
    /// the precondition for a from-scratch replay after a snapshot
    /// fails to load; a compacted log starts at a later index.
    pub fn first_segment_index(dir: impl AsRef<Path>) -> Result<Option<u64>> {
        Ok(list_segments(dir.as_ref())?.first().map(|&(i, _)| i))
    }

    /// Statistics over the on-disk segments (flush first for an exact
    /// byte count).
    pub fn stats(&self) -> Result<LogStats> {
        let segments = list_segments(&self.dir)?;
        let mut bytes = 0;
        for (_, path) in &segments {
            bytes += fs::metadata(path)?.len();
        }
        let events_appended = self.writer.lock().events_appended;
        Ok(LogStats { segments: segments.len(), bytes, events_appended })
    }

    /// Replays every intact event in segment order, stopping silently at
    /// a torn tail in the *last* segment (crash recovery semantics) but
    /// failing loudly on mid-log corruption.
    pub fn replay(&self) -> Result<Vec<LifeLogEvent>> {
        Ok(self.replay_report()?.events)
    }

    /// Like [`EventLog::replay`], but also reports whether the tail was
    /// torn (and where), instead of discarding that information.
    pub fn replay_report(&self) -> Result<ReplayOutcome> {
        self.flush()?;
        let mut iter =
            Self::replay_iter_from_with(&self.dir, LogPosition::default(), self.io.clone())?;
        let mut events = Vec::new();
        for event in iter.by_ref() {
            events.push(event?);
        }
        Ok(ReplayOutcome { events, torn_tail: iter.torn_tail() })
    }

    /// Replays a log directory without an open writer.
    pub fn replay_dir(dir: impl AsRef<Path>) -> Result<Vec<LifeLogEvent>> {
        Ok(Self::replay_dir_report(dir)?.events)
    }

    /// Replays a log directory without an open writer, surfacing the
    /// torn-tail detail.
    pub fn replay_dir_report(dir: impl AsRef<Path>) -> Result<ReplayOutcome> {
        let mut iter = Self::replay_iter(dir)?;
        let mut events = Vec::new();
        for event in iter.by_ref() {
            events.push(event?);
        }
        Ok(ReplayOutcome { events, torn_tail: iter.torn_tail() })
    }

    /// Streaming replay over a log directory: yields one intact event at
    /// a time (one segment buffered at a time, not the whole log). After
    /// exhaustion, [`ReplayIter::torn_tail`] reports a partial final
    /// frame if the log ends mid-write.
    pub fn replay_iter(dir: impl AsRef<Path>) -> Result<ReplayIter> {
        Self::replay_iter_from(dir, LogPosition::default())
    }

    /// Streaming replay of only the log **tail** after `from` — the
    /// segment tail a snapshot does not cover. Segments below
    /// `from.segment` are skipped without being opened (compaction may
    /// already have deleted them); the start segment is read from
    /// `from.offset` (a frame boundary recorded by
    /// [`EventLog::flushed_position`]), so replay cost is proportional
    /// to the tail, not the history.
    ///
    /// A non-zero `from` whose segment file is missing is loud
    /// corruption: it means compaction outran the snapshot that was
    /// supposed to cover those events.
    pub fn replay_iter_from(dir: impl AsRef<Path>, from: LogPosition) -> Result<ReplayIter> {
        Self::replay_iter_from_with(dir, from, real_io())
    }

    /// [`EventLog::replay_iter_from`] with an explicit [`StorageIo`]
    /// seam: each segment buffer passes through
    /// [`StorageIo::read_fault`] right after it is read, so a fault
    /// plan can inject read-side bit rot that the CRC framing must then
    /// surface loudly. The **final** segment is exempt (`tail = true`):
    /// rot there is indistinguishable from a torn tail and would be
    /// healed by silently truncating acknowledged events.
    pub fn replay_iter_from_with(
        dir: impl AsRef<Path>,
        from: LogPosition,
        io: Arc<dyn StorageIo>,
    ) -> Result<ReplayIter> {
        let all = list_segments(dir.as_ref())?;
        let segments: Vec<(u64, PathBuf)> =
            all.into_iter().filter(|&(i, _)| i >= from.segment).collect();
        if from != LogPosition::default() {
            match segments.first() {
                Some(&(index, _)) if index == from.segment => {}
                _ => {
                    return Err(SpaError::Corrupt(format!(
                        "log {} has no segment {} to resume from position {from}",
                        dir.as_ref().display(),
                        from.segment
                    )))
                }
            }
        }
        Ok(ReplayIter {
            segments,
            seg_pos: 0,
            buf: Vec::new(),
            offset: 0,
            base: 0,
            start: from,
            loaded: false,
            torn_tail: None,
            failed: false,
            io,
        })
    }

    /// Opens a log for appending *after a crash*: replays what survives,
    /// truncates a torn final frame (so subsequent appends start on a
    /// clean frame boundary instead of burying garbage mid-segment), and
    /// returns the writable log together with the replay outcome.
    /// Mid-log corruption is still a loud error.
    pub fn open_recover(
        dir: impl Into<PathBuf>,
        config: LogConfig,
    ) -> Result<(Self, ReplayOutcome)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let outcome = Self::replay_dir_report(&dir)?;
        if let Some(torn) = outcome.torn_tail {
            Self::truncate_torn_tail(&dir, &torn)?;
        }
        let log = Self::open(dir, config)?;
        Ok((log, outcome))
    }

    /// Truncates the partial final frame a replay reported
    /// ([`ReplayIter::torn_tail`] / [`ReplayOutcome::torn_tail`]) off
    /// its segment file, so subsequent appends resume on a clean frame
    /// boundary. Streaming counterpart of [`EventLog::open_recover`].
    pub fn truncate_torn_tail(dir: impl AsRef<Path>, torn: &TornTail) -> Result<()> {
        let path = segment_path(dir.as_ref(), torn.segment);
        OpenOptions::new().write(true).open(&path)?.set_len(torn.offset)?;
        Ok(())
    }
}

/// Streaming iterator over the intact events of a log directory (see
/// [`EventLog::replay_iter`]). Yields `Err` once — on mid-log
/// truncation, a bad checksum or I/O failure — and then terminates.
pub struct ReplayIter {
    segments: Vec<(u64, PathBuf)>,
    seg_pos: usize,
    buf: Vec<u8>,
    offset: usize,
    /// Absolute byte offset of `buf[0]` within the current segment file
    /// (non-zero only for a start segment entered mid-file via
    /// [`EventLog::replay_iter_from`]). Reported offsets add this base.
    base: u64,
    /// Where replay begins (frame boundary); `LogPosition::default()`
    /// replays everything.
    start: LogPosition,
    loaded: bool,
    torn_tail: Option<TornTail>,
    failed: bool,
    /// Fault seam consulted on every segment read (no-op in
    /// production); see [`EventLog::replay_iter_from_with`].
    io: Arc<dyn StorageIo>,
}

impl ReplayIter {
    /// After the iterator is exhausted: where the final segment was cut
    /// off mid-frame, if it was. `None` while events remain.
    pub fn torn_tail(&self) -> Option<TornTail> {
        self.torn_tail
    }

    fn fail(&mut self, msg: String) -> Option<Result<LifeLogEvent>> {
        self.failed = true;
        Some(Err(SpaError::Corrupt(msg)))
    }
}

impl Iterator for ReplayIter {
    type Item = Result<LifeLogEvent>;

    fn next(&mut self) -> Option<Result<LifeLogEvent>> {
        if self.failed {
            return None;
        }
        loop {
            if !self.loaded {
                let (index, path) = self.segments.get(self.seg_pos)?;
                // a start segment entered mid-file reads only its tail
                let base = if *index == self.start.segment { self.start.offset } else { 0 };
                self.buf.clear();
                let read = File::open(path).and_then(|mut f| {
                    let len = f.metadata()?.len();
                    if base > len {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!(
                                "segment {} is {len} bytes, shorter than resume offset {base}",
                                path.display()
                            ),
                        ));
                    }
                    if base > 0 {
                        use std::io::Seek;
                        f.seek(std::io::SeekFrom::Start(base))?;
                    }
                    f.read_to_end(&mut self.buf)
                });
                if let Err(e) = read {
                    self.failed = true;
                    return Some(Err(if e.kind() == std::io::ErrorKind::InvalidData {
                        SpaError::Corrupt(e.to_string())
                    } else {
                        e.into()
                    }));
                }
                // read-side rot injection point: never on the final
                // segment, where a flip is indistinguishable from a
                // torn tail (see replay_iter_from_with)
                let tail = self.seg_pos + 1 == self.segments.len();
                self.io.read_fault(&mut self.buf, tail);
                self.base = base;
                self.offset = 0;
                self.loaded = true;
            }
            let (index, path) = &self.segments[self.seg_pos];
            let last = self.seg_pos + 1 == self.segments.len();
            if self.offset < self.buf.len() {
                match decode_frame(&self.buf[self.offset..]) {
                    Ok(FrameRead::Event(event, consumed)) => {
                        self.offset += consumed;
                        return Some(Ok(event));
                    }
                    Ok(FrameRead::Incomplete) if last => {
                        // torn tail write — recoverable, end of replay
                        self.torn_tail = Some(TornTail {
                            segment: *index,
                            offset: self.base + self.offset as u64,
                            bytes_dropped: (self.buf.len() - self.offset) as u64,
                        });
                        self.seg_pos = self.segments.len();
                        self.loaded = false; // keep further next() calls at None
                        return None;
                    }
                    Ok(FrameRead::Incomplete) => {
                        let msg = format!(
                            "segment {} truncated mid-log at offset {}",
                            path.display(),
                            self.base + self.offset as u64
                        );
                        return self.fail(msg);
                    }
                    Err(e) => {
                        let msg = format!(
                            "segment {} offset {}: {e}",
                            path.display(),
                            self.base + self.offset as u64
                        );
                        return self.fail(msg);
                    }
                }
            }
            self.loaded = false;
            self.seg_pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_types::{ActionId, EventKind, Timestamp, UserId};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(i: u32) -> LifeLogEvent {
        LifeLogEvent::new(
            UserId::new(i),
            Timestamp::from_millis(i as u64 * 10),
            EventKind::Action { action: ActionId::new(i % 984), course: None },
        )
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let log = EventLog::open_default(&dir).unwrap();
        let events: Vec<_> = (0..100).map(event).collect();
        for e in &events {
            log.append(e).unwrap();
        }
        assert_eq!(log.replay().unwrap(), events);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_counts() {
        let dir = tmp_dir("batch");
        let log = EventLog::open_default(&dir).unwrap();
        let events: Vec<_> = (0..50).map(event).collect();
        assert_eq!(log.append_batch(events.iter()).unwrap(), 50);
        assert_eq!(log.replay().unwrap().len(), 50);
        assert_eq!(log.stats().unwrap().events_appended, 50);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_append_bytes_match_single_appends_across_rolls() {
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let events: Vec<_> = (0..120).map(event).collect();
        let dir_single = tmp_dir("bytes-single");
        {
            let log = EventLog::open(&dir_single, config.clone()).unwrap();
            for e in &events {
                log.append(e).unwrap();
            }
            log.flush().unwrap();
        }
        let dir_batch = tmp_dir("bytes-batch");
        {
            let log = EventLog::open(&dir_batch, config).unwrap();
            // split into uneven sub-batches to cross roll boundaries
            // mid-batch and at batch edges
            assert_eq!(log.append_batch(events[..7].iter()).unwrap(), 7);
            assert_eq!(log.append_batch(events[7..90].iter()).unwrap(), 83);
            assert_eq!(log.append_batch(events[90..].iter()).unwrap(), 30);
            log.flush().unwrap();
        }
        let single = list_segments(&dir_single).unwrap();
        let batch = list_segments(&dir_batch).unwrap();
        assert_eq!(single.len(), batch.len(), "segment layout diverges");
        for ((i_s, p_s), (i_b, p_b)) in single.iter().zip(batch.iter()) {
            assert_eq!(i_s, i_b);
            assert_eq!(fs::read(p_s).unwrap(), fs::read(p_b).unwrap(), "segment {i_s} diverges");
        }
        assert_eq!(EventLog::replay_dir(&dir_batch).unwrap(), events);
        let _ = fs::remove_dir_all(&dir_single);
        let _ = fs::remove_dir_all(&dir_batch);
    }

    #[test]
    fn append_encoded_matches_append_batch_bytes_across_rolls() {
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let events: Vec<_> = (0..120).map(event).collect();
        let dir_batch = tmp_dir("encoded-batch");
        {
            let log = EventLog::open(&dir_batch, config.clone()).unwrap();
            assert_eq!(log.append_batch(events.iter()).unwrap(), 120);
            log.flush().unwrap();
        }
        let dir_encoded = tmp_dir("encoded-pre");
        {
            let log = EventLog::open(&dir_encoded, config).unwrap();
            // pre-encode in uneven runs, crossing roll boundaries
            for chunk in events.chunks(37) {
                let mut frames = BytesMut::new();
                for e in chunk {
                    encode_frame(e, &mut frames);
                }
                assert_eq!(log.append_encoded(&frames).unwrap(), chunk.len());
            }
            log.flush().unwrap();
        }
        let batch = list_segments(&dir_batch).unwrap();
        let encoded = list_segments(&dir_encoded).unwrap();
        assert_eq!(batch.len(), encoded.len(), "segment layout diverges");
        for ((i_b, p_b), (i_e, p_e)) in batch.iter().zip(encoded.iter()) {
            assert_eq!(i_b, i_e);
            assert_eq!(fs::read(p_b).unwrap(), fs::read(p_e).unwrap(), "segment {i_b} diverges");
        }
        assert_eq!(EventLog::replay_dir(&dir_encoded).unwrap(), events);
        let _ = fs::remove_dir_all(&dir_batch);
        let _ = fs::remove_dir_all(&dir_encoded);
    }

    #[test]
    fn append_encoded_rejects_malformed_buffers() {
        let dir = tmp_dir("encoded-bad");
        let log = EventLog::open_default(&dir).unwrap();
        let mut frames = BytesMut::new();
        encode_frame(&event(1), &mut frames);
        // truncated tail
        assert!(matches!(
            log.append_encoded(&frames[..frames.len() - 2]),
            Err(SpaError::Corrupt(_))
        ));
        // absurd length header
        let mut bad = frames.to_vec();
        bad[..4].copy_from_slice(&(crate::codec::MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(log.append_encoded(&bad), Err(SpaError::Corrupt(_))));
        // nothing was written, and the log is not poisoned
        assert_eq!(log.append_encoded(&frames).unwrap(), 1);
        assert_eq!(log.replay().unwrap(), vec![event(1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_roll_at_threshold() {
        let dir = tmp_dir("roll");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        for i in 0..100 {
            log.append(&event(i)).unwrap();
        }
        log.flush().unwrap();
        let stats = log.stats().unwrap();
        assert!(stats.segments > 1, "expected multiple segments, got {}", stats.segments);
        assert_eq!(log.replay().unwrap().len(), 100, "roll must not lose events");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_appending() {
        let dir = tmp_dir("reopen");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 10..20 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
            let replayed = log.replay().unwrap();
            assert_eq!(replayed.len(), 20);
            assert_eq!(replayed[19], event(19));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_recovered_silently() {
        let dir = tmp_dir("torn");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        // truncate the (single) segment mid-frame
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg).unwrap();
        file.set_len(len - 3).unwrap();
        let events = EventLog::replay_dir(&dir).unwrap();
        assert_eq!(events.len(), 9, "the torn final event is dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_is_loud() {
        let dir = tmp_dir("midcorrupt");
        let config = LogConfig { segment_bytes: 128, fsync: false };
        {
            let log = EventLog::open(&dir, config).unwrap();
            for i in 0..40 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        // truncate the FIRST segment so an earlier segment ends mid-frame
        let first = list_segments(&dir).unwrap()[0].1.clone();
        let len = fs::metadata(&first).unwrap().len();
        OpenOptions::new().write(true).open(&first).unwrap().set_len(len - 2).unwrap();
        assert!(matches!(EventLog::replay_dir(&dir), Err(SpaError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_on_replay() {
        let dir = tmp_dir("bitflip");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..5 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let seg = list_segments(&dir).unwrap()[0].1.clone();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[12] ^= 0xFF; // somewhere inside the first payload
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(EventLog::replay_dir(&dir), Err(SpaError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_log_replays_empty() {
        let dir = tmp_dir("empty");
        let log = EventLog::open_default(&dir).unwrap();
        assert!(log.replay().unwrap().is_empty());
        let stats = log.stats().unwrap();
        assert_eq!(stats.events_appended, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_report_surfaces_the_torn_tail() {
        let dir = tmp_dir("torn-report");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let intact = EventLog::replay_dir_report(&dir).unwrap();
        assert!(intact.torn_tail.is_none());
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let torn = EventLog::replay_dir_report(&dir).unwrap();
        assert_eq!(torn.events.len(), 9);
        let tail = torn.torn_tail.expect("tail must be reported torn");
        assert_eq!(tail.segment, 0);
        assert_eq!(tail.offset + tail.bytes_dropped, len - 3);
        // the streaming iterator stays at None after the torn tail
        // ends it (Iterator contract: no panic on a post-exhaustion poll)
        let mut iter = EventLog::replay_iter(&dir).unwrap();
        assert_eq!(iter.by_ref().filter(|e| e.is_ok()).count(), 9);
        assert!(iter.next().is_none());
        assert!(iter.next().is_none());
        assert_eq!(iter.torn_tail().unwrap(), tail);
    }

    #[test]
    fn replay_iter_streams_and_stops_at_corruption() {
        let dir = tmp_dir("iter");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..20 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let collected: Vec<_> =
            EventLog::replay_iter(&dir).unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(collected.len(), 20);
        // flip a payload byte of frame 10: the iterator yields the clean
        // prefix, then exactly one error, then terminates
        let mut scratch = BytesMut::new();
        encode_frame(&event(0), &mut scratch);
        let frame_len = scratch.len(); // all test events frame identically
        let seg = list_segments(&dir).unwrap()[0].1.clone();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[10 * frame_len + 12] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        let mut iter = EventLog::replay_iter(&dir).unwrap();
        let mut okays = 0;
        let mut errors = 0;
        for item in iter.by_ref() {
            match item {
                Ok(_) => okays += 1,
                Err(SpaError::Corrupt(_)) => errors += 1,
                Err(e) => panic!("unexpected error kind: {e}"),
            }
        }
        assert_eq!(errors, 1, "exactly one loud error");
        assert_eq!(okays, 10, "the clean prefix ends at the flipped frame");
        assert!(iter.next().is_none(), "iterator is fused after failure");
    }

    #[test]
    fn open_recover_truncates_the_torn_tail_and_appends_cleanly() {
        let dir = tmp_dir("recover");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        {
            let (log, outcome) = EventLog::open_recover(&dir, LogConfig::default()).unwrap();
            assert_eq!(outcome.events.len(), 9);
            let torn = outcome.torn_tail.expect("tail was torn");
            assert_eq!(fs::metadata(&seg).unwrap().len(), torn.offset, "partial frame removed");
            // appends after recovery land on a clean frame boundary
            for i in 100..105 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let replayed = EventLog::replay_dir(&dir).unwrap();
        assert_eq!(replayed.len(), 14);
        assert_eq!(replayed[9], event(100), "post-recovery events follow the surviving prefix");
    }

    #[test]
    fn plain_open_heals_a_torn_active_segment() {
        let dir = tmp_dir("open-heal");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..10 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        // the normal bring-up path (NOT open_recover): the torn frame
        // must be truncated before appends, never buried mid-segment
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 50..53 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let replayed = EventLog::replay_dir(&dir).unwrap();
        assert_eq!(replayed.len(), 12, "9 surviving + 3 post-reopen events");
        assert_eq!(replayed[8], event(8));
        assert_eq!(replayed[9], event(50), "new events follow the healed tail");
    }

    #[test]
    fn open_recover_on_a_clean_log_is_a_plain_open() {
        let dir = tmp_dir("recover-clean");
        {
            let log = EventLog::open_default(&dir).unwrap();
            for i in 0..5 {
                log.append(&event(i)).unwrap();
            }
            log.flush().unwrap();
        }
        let (log, outcome) = EventLog::open_recover(&dir, LogConfig::default()).unwrap();
        assert_eq!(outcome.events.len(), 5);
        assert!(outcome.torn_tail.is_none());
        log.append(&event(5)).unwrap();
        assert_eq!(log.replay().unwrap().len(), 6);
    }

    #[test]
    fn flushed_position_tracks_the_frame_boundary() {
        let dir = tmp_dir("position");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        assert_eq!(log.flushed_position().unwrap(), LogPosition::default());
        for i in 0..30 {
            log.append(&event(i)).unwrap();
        }
        let pos = log.flushed_position().unwrap();
        assert!(pos.segment > 0, "30 events must roll a 256-byte segment");
        // the recorded position equals the on-disk size of its segment
        assert_eq!(fs::metadata(segment_path(&dir, pos.segment)).unwrap().len(), pos.offset);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_from_position_yields_exactly_the_tail() {
        let dir = tmp_dir("replay-from");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        let events: Vec<_> = (0..100).map(event).collect();
        for e in &events[..60] {
            log.append(e).unwrap();
        }
        let mark = log.flushed_position().unwrap();
        for e in &events[60..] {
            log.append(e).unwrap();
        }
        log.flush().unwrap();
        let tail: Vec<_> =
            EventLog::replay_iter_from(&dir, mark).unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(tail, &events[60..], "tail replay must resume exactly at the mark");
        // position-at-end replays nothing
        let end = log.flushed_position().unwrap();
        assert_eq!(EventLog::replay_iter_from(&dir, end).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_from_position_reports_torn_tail_with_absolute_offset() {
        let dir = tmp_dir("replay-from-torn");
        let log = EventLog::open_default(&dir).unwrap();
        for i in 0..10 {
            log.append(&event(i)).unwrap();
        }
        let mark = log.flushed_position().unwrap();
        for i in 10..20 {
            log.append(&event(i)).unwrap();
        }
        log.flush().unwrap();
        let seg = list_segments(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&seg).unwrap().len();
        OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 3).unwrap();
        let mut iter = EventLog::replay_iter_from(&dir, mark).unwrap();
        let tail: Vec<_> = iter.by_ref().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(tail.len(), 9, "9 intact tail events, the 10th is torn");
        let torn = iter.torn_tail().expect("tail is torn");
        assert_eq!(torn.offset + torn.bytes_dropped, len - 3, "offset must be segment-absolute");
        // the absolute offset works with truncate_torn_tail
        EventLog::truncate_torn_tail(&dir, &torn).unwrap();
        assert_eq!(fs::metadata(&seg).unwrap().len(), torn.offset);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_deletes_only_covered_segments() {
        let dir = tmp_dir("compact");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        let events: Vec<_> = (0..120).map(event).collect();
        for e in &events[..90] {
            log.append(e).unwrap();
        }
        let mark = log.flushed_position().unwrap();
        for e in &events[90..] {
            log.append(e).unwrap();
        }
        log.flush().unwrap();
        assert!(mark.segment >= 2, "need several covered segments");
        let before = log.stats().unwrap();
        let stats = log.compact_before(mark).unwrap();
        assert_eq!(stats.segments_deleted as u64, mark.segment);
        assert!(stats.bytes_reclaimed > 0);
        let after = log.stats().unwrap();
        assert_eq!(after.segments, before.segments - stats.segments_deleted);
        assert_eq!(EventLog::first_segment_index(&dir).unwrap(), Some(mark.segment));
        // tail replay from the mark is unaffected by compaction
        let tail: Vec<_> =
            EventLog::replay_iter_from(&dir, mark).unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(tail, &events[90..]);
        // …and appending still works after compaction
        log.append(&event(500)).unwrap();
        log.flush().unwrap();
        let tail2: Vec<_> =
            EventLog::replay_iter_from(&dir, mark).unwrap().collect::<Result<Vec<_>>>().unwrap();
        assert_eq!(tail2.len(), 31);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resuming_past_compaction_is_loud() {
        let dir = tmp_dir("compact-gap");
        let config = LogConfig { segment_bytes: 256, fsync: false };
        let log = EventLog::open(&dir, config).unwrap();
        for i in 0..90 {
            log.append(&event(i)).unwrap();
        }
        let mark = log.flushed_position().unwrap();
        log.flush().unwrap();
        // compact past the snapshot position (an operator error): the
        // mark's own segment is gone, so resuming must fail loudly
        // rather than silently skipping events
        log.compact_before(LogPosition { segment: mark.segment + 1, offset: 0 }).unwrap();
        assert!(matches!(EventLog::replay_iter_from(&dir, mark), Err(SpaError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_are_all_stored() {
        let dir = tmp_dir("concurrent");
        let log = std::sync::Arc::new(EventLog::open_default(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    log.append(&event(t * 1000 + i)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.replay().unwrap().len(), 1000);
        let _ = fs::remove_dir_all(&dir);
    }
}
