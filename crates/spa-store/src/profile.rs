//! Sharded user-profile store.
//!
//! Holds the distilled per-user attribute vectors the SPA platform
//! derives from LifeLogs. The store is sharded by user id so the
//! LifeLogs Pre-processor Agent (which "replicates itself in pro-active
//! way", §4) can update many users concurrently while the Smart
//! Component reads training snapshots.
//!
//! Snapshots persist in a simple length-checked binary format so a
//! platform restart does not require re-replaying the whole event log.

use parking_lot::RwLock;
use spa_types::{Result, SpaError, Timestamp, UserId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// One user's stored profile: dense attribute values plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Attribute values indexed by `AttributeId::index()`.
    pub values: Vec<f64>,
    /// Number of updates applied (reward/punish events, EIT answers…).
    pub updates: u64,
    /// Time of the most recent update.
    pub last_update: Timestamp,
}

impl UserProfile {
    /// A fresh all-zero profile with `dim` attributes.
    pub fn new(dim: usize) -> Self {
        Self { values: vec![0.0; dim], updates: 0, last_update: Timestamp::from_millis(0) }
    }
}

const SHARDS: usize = 64;

/// Concurrent map `UserId → UserProfile`, sharded to reduce contention.
pub struct ProfileStore {
    dim: usize,
    shards: Vec<RwLock<std::collections::HashMap<u32, UserProfile>>>,
}

impl ProfileStore {
    /// Creates an empty store for `dim`-attribute profiles.
    pub fn new(dim: usize) -> Self {
        let shards = (0..SHARDS).map(|_| RwLock::new(std::collections::HashMap::new())).collect();
        Self { dim, shards }
    }

    /// Attribute dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn shard(&self, user: UserId) -> &RwLock<std::collections::HashMap<u32, UserProfile>> {
        &self.shards[(user.raw() as usize) % SHARDS]
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Clones the profile of `user`, if present.
    pub fn get(&self, user: UserId) -> Option<UserProfile> {
        self.shard(user).read().get(&user.raw()).cloned()
    }

    /// Inserts or replaces a profile.
    pub fn put(&self, user: UserId, profile: UserProfile) -> Result<()> {
        if profile.values.len() != self.dim {
            return Err(SpaError::DimensionMismatch {
                got: profile.values.len(),
                expected: self.dim,
            });
        }
        self.shard(user).write().insert(user.raw(), profile);
        Ok(())
    }

    /// Applies `f` to the profile of `user`, creating a zero profile
    /// first when absent. Bumps the update counter and timestamp.
    pub fn update(&self, user: UserId, at: Timestamp, f: impl FnOnce(&mut [f64])) {
        let mut shard = self.shard(user).write();
        let profile = shard.entry(user.raw()).or_insert_with(|| UserProfile::new(self.dim));
        f(&mut profile.values);
        profile.updates += 1;
        profile.last_update = at;
    }

    /// Visits every `(user, profile)` pair (shard by shard; the lock is
    /// held per shard, not globally).
    pub fn for_each(&self, mut f: impl FnMut(UserId, &UserProfile)) {
        for shard in &self.shards {
            let guard = shard.read();
            let mut entries: Vec<(&u32, &UserProfile)> = guard.iter().collect();
            entries.sort_by_key(|(id, _)| **id);
            for (&id, profile) in entries {
                f(UserId::new(id), profile);
            }
        }
    }

    /// All user ids, ascending.
    pub fn user_ids(&self) -> Vec<UserId> {
        let mut ids = Vec::with_capacity(self.len());
        for shard in &self.shards {
            ids.extend(shard.read().keys().map(|&k| UserId::new(k)));
        }
        ids.sort_unstable();
        ids
    }

    /// Removes a profile, returning whether it existed.
    pub fn remove(&self, user: UserId) -> bool {
        self.shard(user).write().remove(&user.raw()).is_some()
    }

    // --- snapshot format -------------------------------------------------
    //
    // header:  magic "SPAP" | version u32 | dim u32 | count u64
    // record:  user u32 | updates u64 | last_update u64 | dim × f64
    // footer:  crc32 over everything after the magic

    const MAGIC: &'static [u8; 4] = b"SPAP";
    const VERSION: u32 = 1;

    /// Writes a snapshot of the whole store.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut body: Vec<u8> = Vec::new();
        body.extend_from_slice(&Self::VERSION.to_le_bytes());
        body.extend_from_slice(&(self.dim as u32).to_le_bytes());
        let count = self.len() as u64;
        body.extend_from_slice(&count.to_le_bytes());
        self.for_each(|user, profile| {
            body.extend_from_slice(&user.raw().to_le_bytes());
            body.extend_from_slice(&profile.updates.to_le_bytes());
            body.extend_from_slice(&profile.last_update.millis().to_le_bytes());
            for v in &profile.values {
                body.extend_from_slice(&v.to_le_bytes());
            }
        });
        let crc = crate::codec::crc32(&body);
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(Self::MAGIC)?;
        file.write_all(&body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.flush()?;
        Ok(())
    }

    /// Loads a snapshot previously written by [`Self::save_snapshot`].
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self> {
        let mut bytes = Vec::new();
        BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
        if bytes.len() < 4 + 16 + 4 || &bytes[..4] != Self::MAGIC {
            return Err(SpaError::Corrupt("snapshot header missing".into()));
        }
        let body = &bytes[4..bytes.len() - 4];
        let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let crc_actual = crate::codec::crc32(body);
        if crc_stored != crc_actual {
            return Err(SpaError::Corrupt("snapshot checksum mismatch".into()));
        }
        let mut cursor = body;
        let mut take = |n: usize| -> Result<&[u8]> {
            if cursor.len() < n {
                return Err(SpaError::Corrupt("snapshot truncated".into()));
            }
            let (head, tail) = cursor.split_at(n);
            cursor = tail;
            Ok(head)
        };
        let version = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        if version != Self::VERSION {
            return Err(SpaError::Corrupt(format!("unsupported snapshot version {version}")));
        }
        let dim = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
        let count = u64::from_le_bytes(take(8)?.try_into().expect("8"));
        let store = ProfileStore::new(dim);
        for _ in 0..count {
            let user = UserId::new(u32::from_le_bytes(take(4)?.try_into().expect("4")));
            let updates = u64::from_le_bytes(take(8)?.try_into().expect("8"));
            let last_update =
                Timestamp::from_millis(u64::from_le_bytes(take(8)?.try_into().expect("8")));
            let mut values = Vec::with_capacity(dim);
            for _ in 0..dim {
                values.push(f64::from_le_bytes(take(8)?.try_into().expect("8")));
            }
            store.put(user, UserProfile { values, updates, last_update })?;
        }
        if !cursor.is_empty() {
            return Err(SpaError::Corrupt("snapshot has trailing bytes".into()));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("spa-profiles-{name}-{}.snap", std::process::id()))
    }

    #[test]
    fn put_get_round_trip() {
        let store = ProfileStore::new(3);
        let mut profile = UserProfile::new(3);
        profile.values = vec![1.0, 2.0, 3.0];
        store.put(UserId::new(5), profile.clone()).unwrap();
        assert_eq!(store.get(UserId::new(5)), Some(profile));
        assert_eq!(store.get(UserId::new(6)), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn put_rejects_wrong_dimension() {
        let store = ProfileStore::new(3);
        assert!(store.put(UserId::new(1), UserProfile::new(4)).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn update_creates_and_bumps_counters() {
        let store = ProfileStore::new(2);
        store.update(UserId::new(9), Timestamp::from_millis(10), |v| v[0] = 1.0);
        store.update(UserId::new(9), Timestamp::from_millis(20), |v| v[1] = 2.0);
        let p = store.get(UserId::new(9)).unwrap();
        assert_eq!(p.values, vec![1.0, 2.0]);
        assert_eq!(p.updates, 2);
        assert_eq!(p.last_update, Timestamp::from_millis(20));
    }

    #[test]
    fn remove_reports_presence() {
        let store = ProfileStore::new(1);
        store.update(UserId::new(1), Timestamp::from_millis(0), |_| {});
        assert!(store.remove(UserId::new(1)));
        assert!(!store.remove(UserId::new(1)));
    }

    #[test]
    fn user_ids_are_sorted_across_shards() {
        let store = ProfileStore::new(1);
        for id in [300u32, 2, 65, 64, 190] {
            store.update(UserId::new(id), Timestamp::from_millis(0), |_| {});
        }
        assert_eq!(
            store.user_ids(),
            vec![
                UserId::new(2),
                UserId::new(64),
                UserId::new(65),
                UserId::new(190),
                UserId::new(300)
            ]
        );
    }

    #[test]
    fn for_each_visits_everything_once() {
        let store = ProfileStore::new(1);
        for id in 0..500u32 {
            store.update(UserId::new(id), Timestamp::from_millis(0), |v| v[0] = id as f64);
        }
        let mut seen = std::collections::HashSet::new();
        store.for_each(|user, profile| {
            assert_eq!(profile.values[0], user.raw() as f64);
            assert!(seen.insert(user));
        });
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn snapshot_round_trips() {
        let store = ProfileStore::new(4);
        for id in 0..100u32 {
            store.update(UserId::new(id), Timestamp::from_millis(id as u64), |v| {
                v[(id % 4) as usize] = id as f64 / 7.0;
            });
        }
        let path = tmp_file("roundtrip");
        store.save_snapshot(&path).unwrap();
        let loaded = ProfileStore::load_snapshot(&path).unwrap();
        assert_eq!(loaded.len(), 100);
        assert_eq!(loaded.dim(), 4);
        for id in 0..100u32 {
            assert_eq!(loaded.get(UserId::new(id)), store.get(UserId::new(id)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_detects_corruption() {
        let store = ProfileStore::new(2);
        store.update(UserId::new(1), Timestamp::from_millis(1), |v| v[0] = 1.0);
        let path = tmp_file("corrupt");
        store.save_snapshot(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(ProfileStore::load_snapshot(&path), Err(SpaError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rejects_wrong_magic() {
        let path = tmp_file("magic");
        std::fs::write(&path, b"NOPE-not-a-snapshot-file-at-all!").unwrap();
        assert!(matches!(ProfileStore::load_snapshot(&path), Err(SpaError::Corrupt(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let store = ProfileStore::new(7);
        let path = tmp_file("empty");
        store.save_snapshot(&path).unwrap();
        let loaded = ProfileStore::load_snapshot(&path).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.dim(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let store = std::sync::Arc::new(ProfileStore::new(1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u32 {
                    store.update(UserId::new(i % 50), Timestamp::from_millis(0), |v| {
                        v[0] += 1.0;
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: f64 = {
            let mut t = 0.0;
            store.for_each(|_, p| t += p.values[0]);
            t
        };
        assert_eq!(total, 8.0 * 1000.0);
    }
}
