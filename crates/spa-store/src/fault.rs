//! Deterministic storage fault injection.
//!
//! Production storage fails in ways unit tests never exercise: writes
//! land partially (torn frames), `fsync` reports failure after the page
//! cache already lost the data, transient `EIO`s succeed on retry, and
//! cold media flips bits that only surface at read time. This module
//! gives the store a seam to rehearse all of it deterministically:
//!
//! * [`StorageIo`] — the injection seam. Every physical write, fsync
//!   and bulk read in the log/snapshot layer consults it *before*
//!   touching the file, so an injected fault can either leave the file
//!   untouched (transient — safely retryable) or deliberately damage it
//!   (torn write — the partial frame really lands on disk).
//! * [`RealIo`] — the production no-op implementation; the default
//!   everywhere, with zero branches beyond a devirtualized call.
//! * [`FaultPlan`] — a seeded, probability-driven plan implementing
//!   [`StorageIo`]. Deterministic for a fixed seed and call sequence,
//!   armable/disarmable at runtime, with an exact [`FaultLedger`] so a
//!   chaos harness can prove **every** injected fault was either
//!   recovered or loudly surfaced — never silently absorbed.
//!
//! Injected faults carry one of the `INJECTED_*` marker strings in
//! their error text, so harnesses can attribute observed errors to the
//! ledger without guessing.
//!
//! ## What is deliberately *not* injected
//!
//! Read rot is never injected into the **final** segment of a log
//! (`tail = true` in [`StorageIo::read_fault`]): a flipped byte in the
//! last frames is indistinguishable from a torn tail, and recovery
//! would heal it by truncation — silently discarding acknowledged
//! durable events. That is a misdiagnosis by design of the format
//! (single-writer logs cannot tell rot from a crash mid-append at the
//! tail), so the injector stays out of the ambiguous window and rots
//! only data whose corruption must be surfaced loudly.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Marker substring carried by every injected torn-write error.
pub const INJECTED_TORN_WRITE: &str = "injected torn write";
/// Marker substring carried by every injected transient-`EIO` error
/// that is surfaced (snapshot path, or a retry budget exhausted).
pub const INJECTED_TRANSIENT_EIO: &str = "injected transient EIO";
/// Marker substring carried by every injected fsync-failure error.
pub const INJECTED_FSYNC_FAILURE: &str = "injected fsync failure";

/// The decision returned by [`StorageIo::write_fault`] for one
/// physical write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail the write without touching the file. The caller may retry:
    /// state on disk is exactly as before the attempt.
    Transient,
    /// Land only the first `keep` bytes of the write, then fail. The
    /// partial frame is really on disk — exactly what a crash mid-
    /// `write(2)` leaves behind — so the caller must poison itself and
    /// let recovery heal the tear.
    Torn {
        /// Bytes of the attempted write that physically land.
        keep: usize,
    },
}

/// Injection seam consulted by the storage layer around physical I/O.
///
/// All hooks default to "no fault", so production types implement this
/// for free and the hot path costs one predictable branch. Hooks are
/// consulted **before** the real syscall; an implementation that
/// returns a fault decides whether the file was touched (see
/// [`WriteFault`]).
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Consulted before a physical write of `len` bytes.
    fn write_fault(&self, len: usize) -> Option<WriteFault> {
        let _ = len;
        None
    }

    /// Consulted before an fsync. `true` fails the fsync; per
    /// fsyncgate semantics the caller must treat durability of
    /// previously written bytes as unknown.
    fn fsync_fault(&self) -> bool {
        false
    }

    /// May corrupt `buf`, a buffer just read from disk, in place.
    /// Returns `true` if it did. `tail` is `true` when the buffer is
    /// the final segment of a log, where corruption is indistinguishable
    /// from a torn tail — implementations must not inject there (see
    /// the module docs).
    fn read_fault(&self, buf: &mut [u8], tail: bool) -> bool {
        let _ = (buf, tail);
        false
    }
}

/// Production storage: no faults, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StorageIo for RealIo {}

/// The shared production [`StorageIo`] handle used by all constructors
/// that do not thread an explicit one.
pub fn real_io() -> Arc<dyn StorageIo> {
    Arc::new(RealIo)
}

/// Probabilities (per 10 000 consultations) and shape of a
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Seed for the plan's deterministic RNG.
    pub seed: u64,
    /// Torn-write probability per write consultation.
    pub torn_write_per_10k: u32,
    /// Transient-`EIO` probability per write consultation.
    pub transient_eio_per_10k: u32,
    /// When a transient fires, the burst length is drawn uniformly from
    /// `1..=transient_burst_max`: the next `burst` consultations all
    /// fail transiently. Bursts longer than the writer's retry budget
    /// exhaust it and poison the log.
    pub transient_burst_max: u32,
    /// Fsync-failure probability per fsync consultation.
    pub fsync_failure_per_10k: u32,
    /// Read-rot probability per eligible read consultation (see
    /// [`FaultPlan::allow_read_faults`] for the gating allowance).
    pub read_rot_per_10k: u32,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            torn_write_per_10k: 0,
            transient_eio_per_10k: 0,
            transient_burst_max: 1,
            fsync_failure_per_10k: 0,
            read_rot_per_10k: 0,
        }
    }
}

/// Exact per-kind injection counters, updated atomically as faults are
/// injected. The soak harness closes the loop against these: every
/// count here must be matched by a recovery, a retry, or a loud error
/// on the consumer side.
#[derive(Debug, Default)]
pub struct FaultLedger {
    torn_writes: AtomicU64,
    transient_eios: AtomicU64,
    fsync_failures: AtomicU64,
    read_corruptions: AtomicU64,
}

/// A point-in-time copy of a [`FaultLedger`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Transient `EIO`s injected (each burst element counts once).
    pub transient_eios: u64,
    /// Fsync failures injected.
    pub fsync_failures: u64,
    /// Read buffers corrupted.
    pub read_corruptions: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.torn_writes + self.transient_eios + self.fsync_failures + self.read_corruptions
    }
}

impl FaultLedger {
    /// Snapshot the counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            transient_eios: self.transient_eios.load(Ordering::Relaxed),
            fsync_failures: self.fsync_failures.load(Ordering::Relaxed),
            read_corruptions: self.read_corruptions.load(Ordering::Relaxed),
        }
    }
}

/// Minimal deterministic RNG (splitmix64) so the store needs no RNG
/// dependency. Sequence is fixed by the seed; used both by
/// [`FaultPlan`] and by chaos harnesses that need reproducible pacing.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole sequence is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` must be non-zero).
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at fault-plan probabilities.
        self.next_u64() % bound
    }

    /// `true` with probability `per_10k / 10_000`.
    pub fn chance(&mut self, per_10k: u32) -> bool {
        per_10k > 0 && self.gen_range(10_000) < per_10k as u64
    }
}

/// A deterministic, seed-driven fault plan.
///
/// Disarmed on construction: while disarmed every hook is a no-op, so
/// a platform can be brought up, warmed and checkpointed cleanly
/// before the weather starts. Read rot is additionally gated by an
/// explicit allowance ([`Self::allow_read_faults`]) so harnesses can
/// bound corruption per recovery attempt and keep the accounting
/// exact.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultPlanConfig,
    armed: AtomicBool,
    /// Remaining reads that may be corrupted (decremented per
    /// injection, not per consultation).
    read_allowance: AtomicU64,
    /// Remaining transient failures in the burst currently in flight.
    pending_transients: AtomicU32,
    rng: Mutex<SplitMix64>,
    ledger: FaultLedger,
}

impl FaultPlan {
    /// A disarmed plan with the given probabilities and seed.
    pub fn seeded(config: FaultPlanConfig) -> Self {
        Self {
            armed: AtomicBool::new(false),
            read_allowance: AtomicU64::new(0),
            pending_transients: AtomicU32::new(0),
            rng: Mutex::new(SplitMix64::new(config.seed)),
            ledger: FaultLedger::default(),
            config,
        }
    }

    /// Arm or disarm the plan. Disarmed, every hook is a no-op (a
    /// transient burst in flight is also cancelled).
    pub fn set_armed(&self, armed: bool) {
        if !armed {
            self.pending_transients.store(0, Ordering::Relaxed);
        }
        self.armed.store(armed, Ordering::Relaxed);
    }

    /// Whether the plan is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Permit up to `n` read corruptions from now on (replaces any
    /// previous allowance). Zero forbids read rot entirely.
    pub fn allow_read_faults(&self, n: u64) {
        self.read_allowance.store(n, Ordering::Relaxed);
    }

    /// The exact injection ledger.
    pub fn ledger(&self) -> &FaultLedger {
        &self.ledger
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }
}

impl StorageIo for FaultPlan {
    fn write_fault(&self, len: usize) -> Option<WriteFault> {
        if !self.is_armed() {
            return None;
        }
        // Drain a burst in flight first: each element is one more
        // injected transient.
        loop {
            let pending = self.pending_transients.load(Ordering::Relaxed);
            if pending == 0 {
                break;
            }
            if self
                .pending_transients
                .compare_exchange(pending, pending - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                self.ledger.transient_eios.fetch_add(1, Ordering::Relaxed);
                return Some(WriteFault::Transient);
            }
        }
        let mut rng = self.rng.lock();
        if rng.chance(self.config.torn_write_per_10k) {
            let keep = if len >= 2 { rng.gen_range(len as u64 - 1) as usize + 1 } else { 0 };
            drop(rng);
            self.ledger.torn_writes.fetch_add(1, Ordering::Relaxed);
            return Some(WriteFault::Torn { keep });
        }
        if rng.chance(self.config.transient_eio_per_10k) {
            let burst = 1 + rng.gen_range(self.config.transient_burst_max.max(1) as u64) as u32;
            drop(rng);
            self.pending_transients.store(burst - 1, Ordering::Relaxed);
            self.ledger.transient_eios.fetch_add(1, Ordering::Relaxed);
            return Some(WriteFault::Transient);
        }
        None
    }

    fn fsync_fault(&self) -> bool {
        if !self.is_armed() {
            return false;
        }
        if self.rng.lock().chance(self.config.fsync_failure_per_10k) {
            self.ledger.fsync_failures.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    fn read_fault(&self, buf: &mut [u8], tail: bool) -> bool {
        if !self.is_armed() || tail || buf.is_empty() {
            return false;
        }
        let (hit, pos, bit) = {
            let mut rng = self.rng.lock();
            if !rng.chance(self.config.read_rot_per_10k) {
                return false;
            }
            let pos = rng.gen_range(buf.len() as u64) as usize;
            let bit = rng.gen_range(8) as u8;
            (true, pos, bit)
        };
        debug_assert!(hit);
        // Consume one unit of allowance; without allowance the dice
        // roll above already advanced the RNG but nothing is injected.
        loop {
            let allowance = self.read_allowance.load(Ordering::Relaxed);
            if allowance == 0 {
                return false;
            }
            if self
                .read_allowance
                .compare_exchange(allowance, allowance - 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        buf[pos] ^= 1 << bit;
        self.ledger.read_corruptions.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// An injected-fault I/O error with the standard marker text.
pub(crate) fn injected_error(marker: &str, detail: String) -> std::io::Error {
    std::io::Error::other(format!("{marker}: {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(seed: u64) -> FaultPlan {
        FaultPlan::seeded(FaultPlanConfig {
            seed,
            torn_write_per_10k: 1_500,
            transient_eio_per_10k: 2_000,
            transient_burst_max: 3,
            fsync_failure_per_10k: 2_500,
            read_rot_per_10k: 8_000,
        })
    }

    #[test]
    fn disarmed_plan_injects_nothing() {
        let plan = noisy(7);
        let mut buf = vec![0xAAu8; 64];
        for _ in 0..200 {
            assert_eq!(plan.write_fault(128), None);
            assert!(!plan.fsync_fault());
            assert!(!plan.read_fault(&mut buf, false));
        }
        assert_eq!(plan.ledger().counts(), FaultCounts::default());
        assert_eq!(buf, vec![0xAAu8; 64]);
    }

    #[test]
    fn identical_plans_make_identical_decisions() {
        let a = noisy(42);
        let b = noisy(42);
        a.set_armed(true);
        b.set_armed(true);
        a.allow_read_faults(u64::MAX);
        b.allow_read_faults(u64::MAX);
        for i in 0..500usize {
            assert_eq!(a.write_fault(i + 2), b.write_fault(i + 2), "write {i}");
            assert_eq!(a.fsync_fault(), b.fsync_fault(), "fsync {i}");
            let mut ba = vec![0u8; 32];
            let mut bb = vec![0u8; 32];
            assert_eq!(a.read_fault(&mut ba, false), b.read_fault(&mut bb, false), "read {i}");
            assert_eq!(ba, bb, "corruption pattern {i}");
        }
        assert_eq!(a.ledger().counts(), b.ledger().counts());
        assert!(a.ledger().counts().total() > 0, "a noisy plan must fire");
    }

    #[test]
    fn ledger_counts_every_injection() {
        let plan = noisy(3);
        plan.set_armed(true);
        plan.allow_read_faults(u64::MAX);
        let mut observed = FaultCounts::default();
        for _ in 0..400 {
            match plan.write_fault(64) {
                Some(WriteFault::Torn { keep }) => {
                    assert!((1..64).contains(&keep), "tear keeps a strict prefix: {keep}");
                    observed.torn_writes += 1;
                }
                Some(WriteFault::Transient) => observed.transient_eios += 1,
                None => {}
            }
            if plan.fsync_fault() {
                observed.fsync_failures += 1;
            }
            let mut buf = vec![0x55u8; 16];
            if plan.read_fault(&mut buf, false) {
                assert_ne!(buf, vec![0x55u8; 16], "a reported corruption must change bytes");
                observed.read_corruptions += 1;
            }
        }
        assert_eq!(plan.ledger().counts(), observed);
        assert!(observed.torn_writes > 0);
        assert!(observed.transient_eios > 0);
        assert!(observed.fsync_failures > 0);
        assert!(observed.read_corruptions > 0);
    }

    #[test]
    fn tail_reads_are_never_corrupted() {
        let plan = noisy(9);
        plan.set_armed(true);
        plan.allow_read_faults(u64::MAX);
        let mut buf = vec![0x11u8; 128];
        for _ in 0..300 {
            assert!(!plan.read_fault(&mut buf, true));
        }
        assert_eq!(buf, vec![0x11u8; 128]);
        assert_eq!(plan.ledger().counts().read_corruptions, 0);
    }

    #[test]
    fn read_allowance_bounds_corruptions() {
        let plan = noisy(5);
        plan.set_armed(true);
        plan.allow_read_faults(2);
        let mut injected = 0;
        for _ in 0..500 {
            let mut buf = vec![0u8; 8];
            if plan.read_fault(&mut buf, false) {
                injected += 1;
            }
        }
        assert_eq!(injected, 2, "allowance caps injections");
        assert_eq!(plan.ledger().counts().read_corruptions, 2);
    }

    #[test]
    fn transient_bursts_drain_across_consultations() {
        let plan = FaultPlan::seeded(FaultPlanConfig {
            seed: 1,
            transient_eio_per_10k: 10_000,
            transient_burst_max: 4,
            ..Default::default()
        });
        plan.set_armed(true);
        // With p = 1.0 every consultation is a transient regardless of
        // burst state.
        for _ in 0..50 {
            assert_eq!(plan.write_fault(32), Some(WriteFault::Transient));
        }
        assert_eq!(plan.ledger().counts().transient_eios, 50);
        // Disarming cancels the burst in flight.
        plan.set_armed(false);
        assert_eq!(plan.write_fault(32), None);
    }
}
