//! Per-shard event-log handles for a horizontally partitioned platform.
//!
//! A [`ShardedEventLog`] owns one [`EventLog`] per shard under a common
//! root directory (`shard-0000/`, `shard-0001/`, …) plus a tiny
//! `shards.manifest` file recording the shard count, so a recovering
//! process can rediscover the layout without out-of-band configuration.
//! Routing (user → shard) is the caller's business — the log set only
//! guarantees that shard `i` always maps to the same directory.

use crate::log::{EventLog, LogConfig, LogStats, ReplayOutcome};
use spa_types::{LifeLogEvent, Result, ShardId, SpaError};
use std::fs;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "shards.manifest";

fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:04}"))
}

fn read_manifest(root: &Path) -> Result<usize> {
    let path = root.join(MANIFEST);
    let text = fs::read_to_string(&path).map_err(|e| {
        SpaError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    })?;
    text.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
        SpaError::Corrupt(format!("manifest {}: bad shard count {text:?}", path.display()))
    })
}

/// One [`EventLog`] per shard under a root directory, with a manifest
/// pinning the shard count across restarts.
pub struct ShardedEventLog {
    root: PathBuf,
    logs: Vec<EventLog>,
}

impl ShardedEventLog {
    /// Opens (creating if needed) a sharded log with `shards` shards.
    /// If the directory was used before, the manifest must agree —
    /// replaying events under a different partitioning would silently
    /// scramble per-shard streams, so a mismatch is a loud error.
    pub fn open(root: impl Into<PathBuf>, shards: usize, config: LogConfig) -> Result<Self> {
        if shards == 0 {
            return Err(SpaError::Invalid("shard count must be at least 1".into()));
        }
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest = root.join(MANIFEST);
        if manifest.exists() {
            let existing = read_manifest(&root)?;
            if existing != shards {
                return Err(SpaError::Invalid(format!(
                    "sharded log at {} has {existing} shards, caller wants {shards}",
                    root.display()
                )));
            }
        } else {
            fs::write(&manifest, format!("{shards}\n"))?;
        }
        let logs = (0..shards)
            .map(|i| EventLog::open(shard_dir(&root, i), config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { root, logs })
    }

    /// Opens an existing sharded log, taking the shard count from the
    /// manifest (the crash-recovery entry point: the recovering process
    /// does not need to know the original configuration).
    pub fn open_existing(root: impl Into<PathBuf>, config: LogConfig) -> Result<Self> {
        let root = root.into();
        let shards = read_manifest(&root)?;
        Self::open(root, shards, config)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The log backing one shard.
    pub fn log(&self, shard: ShardId) -> &EventLog {
        &self.logs[shard.index()]
    }

    /// Appends one event to one shard's log.
    pub fn append(&self, shard: ShardId, event: &LifeLogEvent) -> Result<()> {
        self.logs[shard.index()].append(event)
    }

    /// Appends a batch to one shard's log (single lock acquisition).
    pub fn append_batch<'a>(
        &self,
        shard: ShardId,
        events: impl IntoIterator<Item = &'a LifeLogEvent>,
    ) -> Result<usize> {
        self.logs[shard.index()].append_batch(events)
    }

    /// Flushes every shard's log.
    pub fn flush(&self) -> Result<()> {
        for log in &self.logs {
            log.flush()?;
        }
        Ok(())
    }

    /// Aggregate statistics over all shards.
    pub fn stats(&self) -> Result<LogStats> {
        let mut total = LogStats::default();
        for log in &self.logs {
            let s = log.stats()?;
            total.segments += s.segments;
            total.bytes += s.bytes;
            total.events_appended += s.events_appended;
        }
        Ok(total)
    }

    /// One-shot replay of one shard directory: materializes that
    /// shard's events and truncates a torn tail so reopened logs append
    /// cleanly (see [`EventLog::open_recover`]). Platform recovery
    /// streams via [`EventLog::replay_iter`] over
    /// [`ShardedEventLog::shard_path`] instead, to avoid buffering a
    /// shard's whole history; this is the convenience form for tools
    /// and tests.
    pub fn recover_shard(root: &Path, shard: ShardId, config: LogConfig) -> Result<ReplayOutcome> {
        let (_, outcome) = EventLog::open_recover(shard_dir(root, shard.index()), config)?;
        Ok(outcome)
    }

    /// Shard count recorded in a root directory's manifest.
    pub fn manifest_shards(root: &Path) -> Result<usize> {
        read_manifest(root)
    }

    /// The directory holding one shard's segments (for writer-free
    /// streaming replay via [`EventLog::replay_iter`]).
    pub fn shard_path(root: &Path, shard: ShardId) -> PathBuf {
        shard_dir(root, shard.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_types::{ActionId, EventKind, Timestamp, UserId};

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-shardlog-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(i: u32) -> LifeLogEvent {
        LifeLogEvent::new(
            UserId::new(i),
            Timestamp::from_millis(i as u64),
            EventKind::Action { action: ActionId::new(i % 984), course: None },
        )
    }

    #[test]
    fn routes_appends_to_the_right_shard() {
        let root = tmp_root("route");
        let set = ShardedEventLog::open(&root, 3, LogConfig::default()).unwrap();
        for i in 0..30 {
            set.append(ShardId::new(i % 3), &event(i)).unwrap();
        }
        set.flush().unwrap();
        for s in 0..3u32 {
            let events = set.log(ShardId::new(s)).replay().unwrap();
            assert_eq!(events.len(), 10);
            assert!(events.iter().all(|e| e.user.raw() % 3 == s));
        }
        assert_eq!(set.stats().unwrap().events_appended, 30);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_pins_the_shard_count() {
        let root = tmp_root("manifest");
        {
            let _ = ShardedEventLog::open(&root, 4, LogConfig::default()).unwrap();
        }
        assert_eq!(ShardedEventLog::manifest_shards(&root).unwrap(), 4);
        // reopening with the same count is fine, a different count is loud
        assert!(ShardedEventLog::open(&root, 4, LogConfig::default()).is_ok());
        assert!(matches!(
            ShardedEventLog::open(&root, 5, LogConfig::default()),
            Err(SpaError::Invalid(_))
        ));
        let reopened = ShardedEventLog::open_existing(&root, LogConfig::default()).unwrap();
        assert_eq!(reopened.shards(), 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_shards_is_invalid() {
        let root = tmp_root("zero");
        assert!(ShardedEventLog::open(&root, 0, LogConfig::default()).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_existing_without_manifest_is_an_error() {
        let root = tmp_root("nomanifest");
        fs::create_dir_all(&root).unwrap();
        assert!(ShardedEventLog::open_existing(&root, LogConfig::default()).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_manifest_is_loud() {
        let root = tmp_root("badmanifest");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(MANIFEST), "not-a-number\n").unwrap();
        assert!(matches!(
            ShardedEventLog::open_existing(&root, LogConfig::default()),
            Err(SpaError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recover_shard_reads_back_that_shards_events() {
        let root = tmp_root("recover");
        {
            let set = ShardedEventLog::open(&root, 2, LogConfig::default()).unwrap();
            for i in 0..20 {
                set.append(ShardId::new(i % 2), &event(i)).unwrap();
            }
            set.flush().unwrap();
        }
        let outcome =
            ShardedEventLog::recover_shard(&root, ShardId::new(1), LogConfig::default()).unwrap();
        assert_eq!(outcome.events.len(), 10);
        assert!(outcome.torn_tail.is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
