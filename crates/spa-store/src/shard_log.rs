//! Per-shard event-log handles for a horizontally partitioned platform.
//!
//! A [`ShardedEventLog`] owns one [`EventLog`] per shard under a common
//! root directory (`shard-0000/`, `shard-0001/`, …) plus a tiny
//! `shards.manifest` file recording the shard count, so a recovering
//! process can rediscover the layout without out-of-band configuration.
//! Routing (user → shard) is the caller's business — the log set only
//! guarantees that shard `i` always maps to the same directory.
//!
//! The manifest also **registers checkpoints**: after a platform
//! checkpoint writes one snapshot per shard
//! ([`crate::snapshot`]), the manifest is atomically rewritten with one
//! `snapshot <shard> <segment> <offset>` line per shard, naming the
//! newest snapshot and the segment position it covers. Recovery reads
//! the registration to find each shard's snapshot; compaction reads it
//! to know which segments are fully covered and safe to delete.
//!
//! ```text
//! shards.manifest:
//!   <shard count>
//!   snapshot 0 2 40960
//!   snapshot 1 1 8834
//!   …
//! ```

use crate::fault::{real_io, StorageIo};
use crate::log::{
    CompactionStats, EventLog, LogConfig, LogPosition, LogStats, ReplayOutcome, WriteFaultCounters,
};
use spa_types::{LifeLogEvent, Result, ShardId, SpaError};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MANIFEST: &str = "shards.manifest";

fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:04}"))
}

/// Parsed contents of `shards.manifest`: the shard count plus the
/// registered snapshot position per shard (`None` where no checkpoint
/// has been registered yet).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Manifest {
    shards: usize,
    snapshots: Vec<Option<LogPosition>>,
}

fn parse_manifest(path: &Path, text: &str) -> Result<Manifest> {
    let corrupt = |what: &str| SpaError::Corrupt(format!("manifest {}: {what}", path.display()));
    let mut lines = text.lines();
    let shards = lines
        .next()
        .and_then(|l| l.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| corrupt("bad shard count on line 1"))?;
    let mut snapshots = vec![None; shards];
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["snapshot", shard, segment, offset] => {
                let shard = shard
                    .parse::<usize>()
                    .ok()
                    .filter(|&s| s < shards)
                    .ok_or_else(|| corrupt(&format!("snapshot line names shard {shard:?}")))?;
                let segment = segment
                    .parse::<u64>()
                    .map_err(|_| corrupt(&format!("bad snapshot segment {segment:?}")))?;
                let offset = offset
                    .parse::<u64>()
                    .map_err(|_| corrupt(&format!("bad snapshot offset {offset:?}")))?;
                snapshots[shard] = Some(LogPosition { segment, offset });
            }
            _ => return Err(corrupt(&format!("unrecognized line {line:?}"))),
        }
    }
    Ok(Manifest { shards, snapshots })
}

fn load_manifest(root: &Path) -> Result<Manifest> {
    let path = root.join(MANIFEST);
    let text = fs::read_to_string(&path).map_err(|e| {
        SpaError::Io(std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))
    })?;
    parse_manifest(&path, &text)
}

fn store_manifest(root: &Path, manifest: &Manifest) -> Result<()> {
    let mut text = format!("{}\n", manifest.shards);
    for (shard, position) in manifest.snapshots.iter().enumerate() {
        if let Some(p) = position {
            text.push_str(&format!("snapshot {shard} {} {}\n", p.segment, p.offset));
        }
    }
    // atomic rewrite: a crash mid-checkpoint must leave the previous
    // registration intact, never a half-written manifest
    crate::snapshot::write_file_atomic(
        &root.join(MANIFEST),
        &root.join(format!("{MANIFEST}.tmp")),
        text.as_bytes(),
    )
}

fn read_manifest(root: &Path) -> Result<usize> {
    Ok(load_manifest(root)?.shards)
}

/// One [`EventLog`] per shard under a root directory, with a manifest
/// pinning the shard count across restarts.
pub struct ShardedEventLog {
    root: PathBuf,
    logs: Vec<EventLog>,
}

impl ShardedEventLog {
    /// Opens (creating if needed) a sharded log with `shards` shards.
    /// If the directory was used before, the manifest must agree —
    /// replaying events under a different partitioning would silently
    /// scramble per-shard streams, so a mismatch is a loud error.
    pub fn open(root: impl Into<PathBuf>, shards: usize, config: LogConfig) -> Result<Self> {
        Self::open_with_io(root, shards, config, real_io())
    }

    /// [`ShardedEventLog::open`] with an explicit [`StorageIo`] seam,
    /// shared by every shard's log (see [`EventLog::open_with_io`]).
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        shards: usize,
        config: LogConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self> {
        if shards == 0 {
            return Err(SpaError::Invalid("shard count must be at least 1".into()));
        }
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest = root.join(MANIFEST);
        if manifest.exists() {
            let existing = read_manifest(&root)?;
            if existing != shards {
                return Err(SpaError::Invalid(format!(
                    "sharded log at {} has {existing} shards, caller wants {shards}",
                    root.display()
                )));
            }
        } else {
            fs::write(&manifest, format!("{shards}\n"))?;
        }
        let logs = (0..shards)
            .map(|i| EventLog::open_with_io(shard_dir(&root, i), config.clone(), io.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { root, logs })
    }

    /// Opens an existing sharded log, taking the shard count from the
    /// manifest (the crash-recovery entry point: the recovering process
    /// does not need to know the original configuration).
    pub fn open_existing(root: impl Into<PathBuf>, config: LogConfig) -> Result<Self> {
        Self::open_existing_with_io(root, config, real_io())
    }

    /// [`ShardedEventLog::open_existing`] with an explicit
    /// [`StorageIo`] seam.
    pub fn open_existing_with_io(
        root: impl Into<PathBuf>,
        config: LogConfig,
        io: Arc<dyn StorageIo>,
    ) -> Result<Self> {
        let root = root.into();
        let shards = read_manifest(&root)?;
        Self::open_with_io(root, shards, config, io)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The log backing one shard.
    pub fn log(&self, shard: ShardId) -> &EventLog {
        &self.logs[shard.index()]
    }

    /// Appends one event to one shard's log.
    pub fn append(&self, shard: ShardId, event: &LifeLogEvent) -> Result<()> {
        self.logs[shard.index()].append(event)
    }

    /// Appends a batch to one shard's log (single lock acquisition).
    pub fn append_batch<'a>(
        &self,
        shard: ShardId,
        events: impl IntoIterator<Item = &'a LifeLogEvent>,
    ) -> Result<usize> {
        self.logs[shard.index()].append_batch(events)
    }

    /// Appends pre-encoded frames to one shard's log (see
    /// [`EventLog::append_encoded`]).
    pub fn append_encoded(&self, shard: ShardId, frames: &[u8]) -> Result<usize> {
        self.logs[shard.index()].append_encoded(frames)
    }

    /// Flushes every shard's log.
    pub fn flush(&self) -> Result<()> {
        for log in &self.logs {
            log.flush()?;
        }
        Ok(())
    }

    /// Aggregate write-path fault accounting over all shards (see
    /// [`EventLog::write_fault_counters`]); zeroes under production
    /// I/O.
    pub fn write_fault_counters(&self) -> WriteFaultCounters {
        let mut total = WriteFaultCounters::default();
        for log in &self.logs {
            total.accumulate(log.write_fault_counters());
        }
        total
    }

    /// Aggregate statistics over all shards.
    pub fn stats(&self) -> Result<LogStats> {
        let mut total = LogStats::default();
        for log in &self.logs {
            let s = log.stats()?;
            total.segments += s.segments;
            total.bytes += s.bytes;
            total.events_appended += s.events_appended;
        }
        Ok(total)
    }

    /// One-shot replay of one shard directory: materializes that
    /// shard's events and truncates a torn tail so reopened logs append
    /// cleanly (see [`EventLog::open_recover`]). Platform recovery
    /// streams via [`EventLog::replay_iter`] over
    /// [`ShardedEventLog::shard_path`] instead, to avoid buffering a
    /// shard's whole history; this is the convenience form for tools
    /// and tests.
    pub fn recover_shard(root: &Path, shard: ShardId, config: LogConfig) -> Result<ReplayOutcome> {
        let (_, outcome) = EventLog::open_recover(shard_dir(root, shard.index()), config)?;
        Ok(outcome)
    }

    /// Shard count recorded in a root directory's manifest.
    pub fn manifest_shards(root: &Path) -> Result<usize> {
        read_manifest(root)
    }

    /// Flushes one shard's log and returns its current frame-boundary
    /// position (see [`EventLog::flushed_position`]).
    pub fn position(&self, shard: ShardId) -> Result<LogPosition> {
        self.logs[shard.index()].flushed_position()
    }

    /// One shard's current frame-boundary position without I/O (see
    /// [`EventLog::buffered_position`]).
    pub fn buffered_position(&self, shard: ShardId) -> LogPosition {
        self.logs[shard.index()].buffered_position()
    }

    /// Makes one shard's log durable up to `position` irrespective of
    /// the `fsync` configuration (see [`EventLog::sync_up_to`]).
    pub fn sync_up_to(&self, shard: ShardId, position: LogPosition) -> Result<()> {
        self.logs[shard.index()].sync_up_to(position)
    }

    /// Deletes one shard's segments fully covered by a snapshot at
    /// `position` (see [`EventLog::compact_before`]).
    pub fn compact_before(&self, shard: ShardId, position: LogPosition) -> Result<CompactionStats> {
        self.logs[shard.index()].compact_before(position)
    }

    /// Atomically registers one snapshot position per shard in the
    /// manifest (the final step of a platform checkpoint: once this
    /// returns, recovery will prefer the new snapshots). Entries are
    /// merged — shards passed as `None` keep their previous
    /// registration.
    pub fn register_snapshots(root: &Path, positions: &[Option<LogPosition>]) -> Result<()> {
        let mut manifest = load_manifest(root)?;
        if positions.len() != manifest.shards {
            return Err(SpaError::Invalid(format!(
                "registering {} snapshot positions for a {}-shard log",
                positions.len(),
                manifest.shards
            )));
        }
        for (slot, position) in manifest.snapshots.iter_mut().zip(positions) {
            if position.is_some() {
                *slot = *position;
            }
        }
        store_manifest(root, &manifest)
    }

    /// The registered snapshot position per shard (`None` where no
    /// checkpoint has ever been registered).
    pub fn registered_snapshots(root: &Path) -> Result<Vec<Option<LogPosition>>> {
        Ok(load_manifest(root)?.snapshots)
    }

    /// The directory holding one shard's segments (for writer-free
    /// streaming replay via [`EventLog::replay_iter`]).
    pub fn shard_path(root: &Path, shard: ShardId) -> PathBuf {
        shard_dir(root, shard.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spa_types::{ActionId, EventKind, Timestamp, UserId};

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spa-shardlog-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(i: u32) -> LifeLogEvent {
        LifeLogEvent::new(
            UserId::new(i),
            Timestamp::from_millis(i as u64),
            EventKind::Action { action: ActionId::new(i % 984), course: None },
        )
    }

    #[test]
    fn routes_appends_to_the_right_shard() {
        let root = tmp_root("route");
        let set = ShardedEventLog::open(&root, 3, LogConfig::default()).unwrap();
        for i in 0..30 {
            set.append(ShardId::new(i % 3), &event(i)).unwrap();
        }
        set.flush().unwrap();
        for s in 0..3u32 {
            let events = set.log(ShardId::new(s)).replay().unwrap();
            assert_eq!(events.len(), 10);
            assert!(events.iter().all(|e| e.user.raw() % 3 == s));
        }
        assert_eq!(set.stats().unwrap().events_appended, 30);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_pins_the_shard_count() {
        let root = tmp_root("manifest");
        {
            let _ = ShardedEventLog::open(&root, 4, LogConfig::default()).unwrap();
        }
        assert_eq!(ShardedEventLog::manifest_shards(&root).unwrap(), 4);
        // reopening with the same count is fine, a different count is loud
        assert!(ShardedEventLog::open(&root, 4, LogConfig::default()).is_ok());
        assert!(matches!(
            ShardedEventLog::open(&root, 5, LogConfig::default()),
            Err(SpaError::Invalid(_))
        ));
        let reopened = ShardedEventLog::open_existing(&root, LogConfig::default()).unwrap();
        assert_eq!(reopened.shards(), 4);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_shards_is_invalid() {
        let root = tmp_root("zero");
        assert!(ShardedEventLog::open(&root, 0, LogConfig::default()).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_existing_without_manifest_is_an_error() {
        let root = tmp_root("nomanifest");
        fs::create_dir_all(&root).unwrap();
        assert!(ShardedEventLog::open_existing(&root, LogConfig::default()).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_manifest_is_loud() {
        let root = tmp_root("badmanifest");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(MANIFEST), "not-a-number\n").unwrap();
        assert!(matches!(
            ShardedEventLog::open_existing(&root, LogConfig::default()),
            Err(SpaError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn snapshot_registration_round_trips_and_merges() {
        let root = tmp_root("register");
        {
            let _ = ShardedEventLog::open(&root, 3, LogConfig::default()).unwrap();
        }
        assert_eq!(
            ShardedEventLog::registered_snapshots(&root).unwrap(),
            vec![None, None, None],
            "fresh manifest has no registrations"
        );
        let first = LogPosition { segment: 2, offset: 100 };
        ShardedEventLog::register_snapshots(&root, &[Some(first), None, None]).unwrap();
        assert_eq!(
            ShardedEventLog::registered_snapshots(&root).unwrap(),
            vec![Some(first), None, None]
        );
        // a later registration for other shards keeps shard 0's entry
        let second = LogPosition { segment: 0, offset: 7 };
        ShardedEventLog::register_snapshots(&root, &[None, Some(second), None]).unwrap();
        assert_eq!(
            ShardedEventLog::registered_snapshots(&root).unwrap(),
            vec![Some(first), Some(second), None]
        );
        // the count line still reads back, and reopening still works
        assert_eq!(ShardedEventLog::manifest_shards(&root).unwrap(), 3);
        assert!(ShardedEventLog::open_existing(&root, LogConfig::default()).is_ok());
        // wrong-arity registration is rejected
        assert!(ShardedEventLog::register_snapshots(&root, &[None]).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_rejects_bad_snapshot_lines() {
        let root = tmp_root("badsnapline");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(MANIFEST), "2\nsnapshot 5 0 0\n").unwrap();
        assert!(matches!(ShardedEventLog::registered_snapshots(&root), Err(SpaError::Corrupt(_))));
        fs::write(root.join(MANIFEST), "2\nnonsense line\n").unwrap();
        assert!(matches!(
            ShardedEventLog::open_existing(&root, LogConfig::default()),
            Err(SpaError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn recover_shard_reads_back_that_shards_events() {
        let root = tmp_root("recover");
        {
            let set = ShardedEventLog::open(&root, 2, LogConfig::default()).unwrap();
            for i in 0..20 {
                set.append(ShardId::new(i % 2), &event(i)).unwrap();
            }
            set.flush().unwrap();
        }
        let outcome =
            ShardedEventLog::recover_shard(&root, ShardId::new(1), LogConfig::default()).unwrap();
        assert_eq!(outcome.events.len(), 10);
        assert!(outcome.torn_tail.is_none());
        let _ = fs::remove_dir_all(&root);
    }
}
