//! Crash-recovery property tests for the event log: whatever byte
//! offset a crash cuts the tail segment at, replay must yield *exactly*
//! the prefix of fully framed records — never a torn record, never a
//! record past the cut, and never a silent misparse.

use proptest::prelude::*;
use spa_store::codec::encode_frame;
use spa_store::log::{EventLog, LogConfig};
use spa_types::{
    ActionId, CampaignId, CourseId, EventKind, LifeLogEvent, QuestionId, Timestamp, UserId, Valence,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spa-crash-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes one generated tuple into a concrete event (covers every
/// variant, including optional ids present and absent).
fn make_event(kind: u8, user: u32, at: u64, id: u32, value: f64) -> LifeLogEvent {
    let kind = match kind % 8 {
        0 => EventKind::Action { action: ActionId::new(id % 984), course: None },
        1 => EventKind::Action {
            action: ActionId::new(id % 984),
            course: Some(CourseId::new(id % 50)),
        },
        2 => EventKind::Transaction { course: CourseId::new(id % 50), campaign: None },
        3 => EventKind::Transaction {
            course: CourseId::new(id % 50),
            campaign: Some(CampaignId::new(id % 9)),
        },
        4 => EventKind::Rating { course: CourseId::new(id % 50), stars: (id % 5 + 1) as u8 },
        5 => {
            EventKind::EitAnswer { question: QuestionId::new(id % 40), answer: Valence::new(value) }
        }
        6 => EventKind::EitSkipped { question: QuestionId::new(id % 40) },
        _ => EventKind::MessageOpened { campaign: CampaignId::new(id % 9) },
    };
    LifeLogEvent::new(UserId::new(user), Timestamp::from_millis(at), kind)
}

/// Frame boundaries (cumulative end offsets) of `events` as the log
/// writer lays them out — computed independently via the codec, not by
/// reading the log back.
fn frame_ends(events: &[LifeLogEvent]) -> Vec<usize> {
    let mut ends = Vec::with_capacity(events.len());
    let mut total = 0usize;
    let mut scratch = bytes::BytesMut::new();
    for event in events {
        scratch.clear();
        encode_frame(event, &mut scratch);
        total += scratch.len();
        ends.push(total);
    }
    ends
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-segment log, truncated at an arbitrary byte offset:
    /// replay returns exactly the events whose frames fit entirely
    /// below the cut, and reports a torn tail iff the cut lands
    /// mid-frame.
    #[test]
    fn truncation_yields_exactly_the_framed_prefix(
        raw in proptest::collection::vec(
            (0u8..8, 0u32..500, 0u64..1_000_000, 0u32..10_000, -1.0f64..1.0),
            1..40,
        ),
        cut_seed in 0u64..1_000_000,
    ) {
        let events: Vec<LifeLogEvent> =
            raw.iter().map(|&(k, u, at, id, v)| make_event(k, u, at, id, v)).collect();
        let dir = tmp_dir("prefix");
        {
            let log = EventLog::open_default(&dir).unwrap();
            log.append_batch(events.iter()).unwrap();
            log.flush().unwrap();
        }
        let ends = frame_ends(&events);
        let total = *ends.last().unwrap();
        let cut = (cut_seed % (total as u64 + 1)) as usize; // 0..=total
        let seg = dir.join("segment-0000000000.log");
        prop_assert_eq!(std::fs::metadata(&seg).unwrap().len(), total as u64);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut as u64)
            .unwrap();

        let expected = ends.iter().take_while(|&&end| end <= cut).count();
        let outcome = EventLog::replay_dir_report(&dir).unwrap();
        prop_assert_eq!(outcome.events.len(), expected, "cut at {} of {}", cut, total);
        prop_assert_eq!(&outcome.events[..], &events[..expected]);
        let cut_is_on_boundary = cut == 0 || ends.contains(&cut);
        prop_assert_eq!(
            outcome.torn_tail.is_some(),
            !cut_is_on_boundary,
            "torn tail must be reported iff the cut is mid-frame (cut {})", cut
        );
        if let Some(torn) = outcome.torn_tail {
            prop_assert_eq!(torn.offset as usize + torn.bytes_dropped as usize, cut);
        }

        // recovery truncates the torn frame and appends continue cleanly
        let (log, recovered) = EventLog::open_recover(&dir, LogConfig::default()).unwrap();
        prop_assert_eq!(recovered.events.len(), expected);
        let extra = make_event(0, 42, 7, 7, 0.0);
        log.append(&extra).unwrap();
        let replayed = log.replay().unwrap();
        prop_assert_eq!(replayed.len(), expected + 1);
        prop_assert_eq!(replayed.last().unwrap(), &extra);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Multi-segment log (tiny roll threshold), tail segment truncated:
    /// all fully framed records across *all* segments survive.
    #[test]
    fn multi_segment_truncation_keeps_all_earlier_segments(
        raw in proptest::collection::vec(
            (0u8..8, 0u32..500, 0u64..1_000_000, 0u32..10_000, -1.0f64..1.0),
            20..80,
        ),
        drop_bytes in 1u64..64,
    ) {
        let events: Vec<LifeLogEvent> =
            raw.iter().map(|&(k, u, at, id, v)| make_event(k, u, at, id, v)).collect();
        let dir = tmp_dir("multiseg");
        {
            let log = EventLog::open(&dir, LogConfig { segment_bytes: 160, fsync: false }).unwrap();
            log.append_batch(events.iter()).unwrap();
            log.flush().unwrap();
        }
        // find the last segment and cut it short (never below zero)
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segments.sort();
        prop_assert!(segments.len() > 1, "test needs multiple segments");
        let last = segments.last().unwrap();
        let len = std::fs::metadata(last).unwrap().len();
        let cut = len.saturating_sub(drop_bytes);
        std::fs::OpenOptions::new().write(true).open(last).unwrap().set_len(cut).unwrap();

        let outcome = EventLog::replay_dir_report(&dir).unwrap();
        // every surviving event is a prefix of the original stream
        prop_assert!(outcome.events.len() <= events.len());
        prop_assert_eq!(&outcome.events[..], &events[..outcome.events.len()]);
        // and nothing from segments before the tail was lost: the byte
        // span of earlier segments only holds whole frames
        let earlier_bytes: u64 =
            segments[..segments.len() - 1].iter().map(|p| std::fs::metadata(p).unwrap().len()).sum();
        let ends = frame_ends(&events);
        let in_earlier = ends.iter().take_while(|&&end| end as u64 <= earlier_bytes).count();
        prop_assert!(outcome.events.len() >= in_earlier);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
