//! Fault-injection contract tests for the storage substrate: every
//! injected storage fault must be either *recovered* (bounded retry on
//! the write path) or *surfaced loudly* (error + poisoned log +
//! recovery healing) — never silently absorbed into divergent state.
//!
//! The centerpiece is the poisoned-log contract, end to end: a failed
//! append poisons the log, further appends are refused, recovery heals
//! the torn tail, and ingest continues — with the final replay
//! bit-identical to a fault-free log fed the surviving sequence.

use spa_store::fault::{FaultPlan, FaultPlanConfig};
use spa_store::log::{EventLog, LogConfig, LogPosition, WRITE_RETRY_LIMIT};
use spa_store::snapshot::{self, Snapshot, SnapshotBuilder};
use spa_types::{
    ActionId, CourseId, EventKind, LifeLogEvent, SpaError, Timestamp, UserId, Valence,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spa-fault-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn event(i: u32) -> LifeLogEvent {
    let kind = if i.is_multiple_of(3) {
        EventKind::EitAnswer {
            question: spa_types::QuestionId::new(i % 40),
            answer: Valence::new((i as f64 / 50.0).sin()),
        }
    } else {
        EventKind::Action { action: ActionId::new(i % 984), course: Some(CourseId::new(i % 50)) }
    };
    LifeLogEvent::new(UserId::new(i % 64), Timestamp::from_millis(i as u64), kind)
}

fn plan(config: FaultPlanConfig) -> Arc<FaultPlan> {
    Arc::new(FaultPlan::seeded(config))
}

/// Satellite contract test: failed write → poisoned log → appends
/// refused → recovery heals the torn tail → ingest continues, and the
/// surviving stream replays bit-identically to a fault-free log.
#[test]
fn poisoned_log_contract_end_to_end() {
    let dir = tmp_dir("poison");
    let config = LogConfig { segment_bytes: 256, fsync: false };
    let faults = plan(FaultPlanConfig {
        seed: 11,
        torn_write_per_10k: 10_000, // every consulted write tears
        ..FaultPlanConfig::default()
    });
    let mut survivors: Vec<LifeLogEvent> = Vec::new();
    {
        let log = EventLog::open_with_io(&dir, config.clone(), faults.clone()).unwrap();
        for i in 0..10u32 {
            log.append(&event(i)).unwrap();
            survivors.push(event(i));
        }
        faults.set_armed(true);
        // the torn write physically lands a strict prefix of the frame
        // and fails the append
        let err = log.append(&event(10)).unwrap_err();
        assert!(
            err.to_string().contains(spa_store::fault::INJECTED_TORN_WRITE),
            "the torn append surfaces the injected fault: {err}"
        );
        assert_eq!(faults.ledger().counts().torn_writes, 1);
        // the log is now poisoned: the segment may end mid-frame, so
        // every further append is refused — acknowledged events must
        // never be buried behind the tear
        faults.set_armed(false);
        let refused = log.append(&event(11)).unwrap_err();
        assert!(
            refused.to_string().contains("poisoned"),
            "appends after a failed write are refused: {refused}"
        );
        let refused_batch = log.append_batch([&event(11)]).unwrap_err();
        assert!(refused_batch.to_string().contains("poisoned"));
    } // crash (drop the poisoned writer)

    // recovery heals the torn tail and reopens for appending
    let (log, outcome) = EventLog::open_recover(&dir, config.clone()).unwrap();
    assert_eq!(outcome.events.len(), 10, "all acknowledged events survive");
    for i in 12..20u32 {
        log.append(&event(i)).unwrap();
        survivors.push(event(i));
    }
    log.flush().unwrap();
    let replayed = log.replay().unwrap();
    drop(log);

    // fault-free reference fed the surviving sequence
    let ref_dir = tmp_dir("poison-ref");
    let reference = EventLog::open(&ref_dir, config).unwrap();
    for e in &survivors {
        reference.append(e).unwrap();
    }
    reference.flush().unwrap();
    assert_eq!(replayed, reference.replay().unwrap(), "recovered log replays bit-identically");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn transient_eios_are_absorbed_by_bounded_retry() {
    let dir = tmp_dir("transient");
    let faults = plan(FaultPlanConfig {
        seed: 7,
        transient_eio_per_10k: 2_000,
        transient_burst_max: 2,
        ..FaultPlanConfig::default()
    });
    let log = EventLog::open_with_io(&dir, LogConfig::default(), faults.clone()).unwrap();
    faults.set_armed(true);
    let events: Vec<LifeLogEvent> = (0..200).map(event).collect();
    for e in &events {
        log.append(e).unwrap(); // every transient is absorbed in place
    }
    faults.set_armed(false);
    log.flush().unwrap();
    let counts = faults.ledger().counts();
    let counters = log.write_fault_counters();
    assert!(counts.transient_eios > 0, "a 20% rate over 200 appends must fire");
    assert_eq!(
        counters.transients_absorbed, counts.transient_eios,
        "every injected transient is accounted as absorbed — none fatal, none lost"
    );
    assert_eq!(counters.transients_fatal, 0);
    assert!(counters.writes_recovered > 0);
    assert_eq!(log.replay().unwrap(), events, "retried writes landed every event exactly once");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_exhaustion_poisons_the_log() {
    let dir = tmp_dir("exhaust");
    let faults = plan(FaultPlanConfig {
        seed: 3,
        transient_eio_per_10k: 10_000, // every attempt fails: retry budget exhausts
        ..FaultPlanConfig::default()
    });
    let log = EventLog::open_with_io(&dir, LogConfig::default(), faults.clone()).unwrap();
    log.append(&event(0)).unwrap();
    faults.set_armed(true);
    let err = log.append(&event(1)).unwrap_err();
    assert!(err.to_string().contains(spa_store::fault::INJECTED_TRANSIENT_EIO), "{err}");
    faults.set_armed(false);
    assert_eq!(
        log.write_fault_counters().transients_fatal,
        (WRITE_RETRY_LIMIT + 1) as u64,
        "the initial attempt plus every retry is counted"
    );
    assert!(log.append(&event(2)).unwrap_err().to_string().contains("poisoned"));
    // nothing of the failed frame reached the file: recovery sees
    // exactly the acknowledged prefix
    drop(log);
    let (_log, outcome) = EventLog::open_recover(&dir, LogConfig::default()).unwrap();
    assert_eq!(outcome.events, vec![event(0)]);
    assert!(outcome.torn_tail.is_none(), "transients never tear the file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_failures_are_loud_but_do_not_poison() {
    let dir = tmp_dir("fsync");
    let config = LogConfig { segment_bytes: 8 * 1024 * 1024, fsync: true };
    let faults = plan(FaultPlanConfig {
        seed: 5,
        fsync_failure_per_10k: 10_000,
        ..FaultPlanConfig::default()
    });
    let log = EventLog::open_with_io(&dir, config, faults.clone()).unwrap();
    log.append(&event(0)).unwrap();
    faults.set_armed(true);
    let err = log.flush().unwrap_err();
    assert!(err.to_string().contains(spa_store::fault::INJECTED_FSYNC_FAILURE), "{err}");
    // sync_up_to consults the seam even when `fsync: false` would not
    let err = log.sync_up_to(LogPosition::default()).unwrap_err();
    assert!(err.to_string().contains(spa_store::fault::INJECTED_FSYNC_FAILURE), "{err}");
    assert_eq!(faults.ledger().counts().fsync_failures, 2);
    // nothing was torn — the caller just didn't get its durability
    // point. The log stays usable: disarm and both succeed.
    faults.set_armed(false);
    log.append(&event(1)).unwrap();
    log.flush().unwrap();
    assert_eq!(log.replay().unwrap(), vec![event(0), event(1)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_rot_in_closed_segments_is_loud_never_silent() {
    let dir = tmp_dir("rot");
    let config = LogConfig { segment_bytes: 256, fsync: false };
    let events: Vec<LifeLogEvent> = (0..60).map(event).collect();
    {
        let log = EventLog::open(&dir, config).unwrap();
        for e in &events {
            log.append(e).unwrap();
        }
        log.flush().unwrap();
    }
    let faults =
        plan(FaultPlanConfig { seed: 23, read_rot_per_10k: 10_000, ..FaultPlanConfig::default() });
    faults.set_armed(true);
    faults.allow_read_faults(1);
    let iter =
        EventLog::replay_iter_from_with(&dir, LogPosition::default(), faults.clone()).unwrap();
    let outcome: Result<Vec<LifeLogEvent>, SpaError> = iter.collect();
    // one bit flipped in a closed segment: the CRC framing must refuse
    // the segment loudly, not yield a silently different event
    assert!(matches!(outcome, Err(SpaError::Corrupt(_))), "rot must surface: {outcome:?}");
    assert_eq!(faults.ledger().counts().read_corruptions, 1, "allowance bounds injections to 1");
    // the file itself was never modified — a clean replay still works
    assert_eq!(EventLog::replay_dir(&dir).unwrap(), events);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_final_segment_is_exempt_from_read_rot() {
    let dir = tmp_dir("rot-tail");
    // one big segment: everything lives in the final (tail) segment,
    // where a flip would be indistinguishable from a torn tail and
    // recovery would silently truncate acknowledged events
    let events: Vec<LifeLogEvent> = (0..40).map(event).collect();
    {
        let log = EventLog::open(&dir, LogConfig::default()).unwrap();
        for e in &events {
            log.append(e).unwrap();
        }
        log.flush().unwrap();
    }
    let faults =
        plan(FaultPlanConfig { seed: 29, read_rot_per_10k: 10_000, ..FaultPlanConfig::default() });
    faults.set_armed(true);
    faults.allow_read_faults(10);
    let replayed: Vec<LifeLogEvent> =
        EventLog::replay_iter_from_with(&dir, LogPosition::default(), faults.clone())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
    assert_eq!(replayed, events);
    assert_eq!(faults.ledger().counts().read_corruptions, 0, "tail reads are never corrupted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_write_faults_never_touch_the_final_path() {
    let position = LogPosition { segment: 2, offset: 64 };
    for (name, config) in [
        (
            "torn",
            FaultPlanConfig { seed: 41, torn_write_per_10k: 10_000, ..FaultPlanConfig::default() },
        ),
        (
            "transient",
            FaultPlanConfig {
                seed: 43,
                transient_eio_per_10k: 10_000,
                ..FaultPlanConfig::default()
            },
        ),
        (
            "fsync",
            FaultPlanConfig {
                seed: 47,
                fsync_failure_per_10k: 10_000,
                ..FaultPlanConfig::default()
            },
        ),
    ] {
        let dir = tmp_dir(&format!("snap-{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        let faults = plan(config);
        faults.set_armed(true);
        let mut builder = SnapshotBuilder::new(position);
        builder.section(1, vec![7u8; 512]);
        let path = snapshot::snapshot_path(&dir, position);
        let err = builder.write_atomic_with(&path, faults.as_ref()).unwrap_err();
        // the checkpoint fails loudly; the final path never appears, so
        // recovery can never load a half-written snapshot
        assert!(err.to_string().contains("injected"), "{name}: {err}");
        assert!(!path.exists(), "{name}: final snapshot path must not exist");
        // the stale temp the fault left behind is exactly what
        // recovery's sweep removes (and reports)
        let removed = snapshot::remove_stale_temps(&dir).unwrap();
        if name == "torn" {
            assert_eq!(removed.len(), 1, "a torn snapshot write leaves its partial temp");
            assert!(removed[0].to_string_lossy().ends_with(".snap-tmp"));
        }
        assert!(snapshot::remove_stale_temps(&dir).unwrap().is_empty(), "sweep is idempotent");
        // a clean retry of the same checkpoint succeeds
        faults.set_armed(false);
        let mut builder = SnapshotBuilder::new(position);
        builder.section(1, vec![7u8; 512]);
        builder.write_atomic_with(&path, faults.as_ref()).unwrap();
        assert!(Snapshot::read(&path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn snapshot_read_rot_fails_the_crc_loudly() {
    let dir = tmp_dir("snap-rot");
    std::fs::create_dir_all(&dir).unwrap();
    let position = LogPosition { segment: 1, offset: 32 };
    let mut builder = SnapshotBuilder::new(position);
    builder.section(1, (0..=255u8).collect::<Vec<u8>>());
    let path = snapshot::snapshot_path(&dir, position);
    builder.write_atomic(&path).unwrap();
    let faults =
        plan(FaultPlanConfig { seed: 53, read_rot_per_10k: 10_000, ..FaultPlanConfig::default() });
    faults.set_armed(true);
    faults.allow_read_faults(1);
    let err = Snapshot::read_with(&path, faults.clone()).unwrap_err();
    assert!(matches!(err, SpaError::Corrupt(_)), "snapshot rot must surface: {err}");
    assert_eq!(faults.ledger().counts().read_corruptions, 1);
    // the on-disk file is untouched: a clean read still succeeds
    let snap = Snapshot::read(&path).unwrap();
    assert_eq!(snap.position(), position);
    let _ = std::fs::remove_dir_all(&dir);
}
