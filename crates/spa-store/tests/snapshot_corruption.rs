//! Corruption properties of the snapshot container: **no flipped bit is
//! ever silently accepted**. A snapshot either reads back byte-identical
//! to what was written or fails loudly — there is no third outcome where
//! a recovering platform loads subtly different state. Plus the
//! crash-mid-checkpoint atomicity property: a kill between the temp
//! write and the rename leaves the previous snapshot fully loadable.

use proptest::prelude::*;
use spa_store::log::LogPosition;
use spa_store::snapshot::{
    latest_valid_snapshot, list_snapshots, snapshot_path, Snapshot, SnapshotBuilder,
};
use spa_types::SpaError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spa-snapcorrupt-{name}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but representative snapshot: three sections (one empty) with
/// distinct contents, covering a non-trivial position.
fn small_snapshot_bytes() -> Vec<u8> {
    let dir = tmp_dir("build");
    let position = LogPosition { segment: 2, offset: 1234 };
    let path = snapshot_path(&dir, position);
    let mut builder = SnapshotBuilder::new(position);
    builder
        .section(1, (0u8..40).collect())
        .section(2, Vec::new())
        .section(3, vec![0xFF, 0x00, 0x7F, 0x80]);
    builder.write_atomic(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// Exhaustive single-bit flips: every flip of every byte must be a loud
/// decode error. (CRC-32 detects *all* single-bit errors by
/// construction; this test pins that the decoder actually routes every
/// one of them — magic, header, section bytes, the CRC field itself —
/// through [`SpaError::Corrupt`] instead of accepting or panicking.)
#[test]
fn every_flipped_bit_is_detected() {
    let clean = small_snapshot_bytes();
    let reference = Snapshot::decode(&clean).unwrap();
    for position in 0..clean.len() {
        for bit in 0..8u8 {
            let mut corrupted = clean.clone();
            corrupted[position] ^= 1 << bit;
            match Snapshot::decode(&corrupted) {
                Err(SpaError::Corrupt(_)) => {}
                Err(e) => panic!("byte {position} bit {bit}: unexpected error kind {e}"),
                Ok(decoded) => panic!(
                    "byte {position} bit {bit}: silently decoded ({} sections, position {}) \
                     despite corruption — reference had {} sections",
                    decoded.sections().len(),
                    decoded.position(),
                    reference.sections().len()
                ),
            }
        }
    }
}

/// Every truncation of the file is loud — a partially written snapshot
/// (torn copy, short read) can never decode.
#[test]
fn every_truncation_is_detected() {
    let clean = small_snapshot_bytes();
    for cut in 0..clean.len() {
        assert!(
            matches!(Snapshot::decode(&clean[..cut]), Err(SpaError::Corrupt(_))),
            "truncation to {cut} bytes must not decode"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-bit / multi-byte corruption: still never silent.
    /// (Multi-bit errors are where "CRC catches everything" stops being
    /// a theorem and becomes 2^-32 odds; the decoder's structural
    /// validation backs it up, and this pins that nothing panics.)
    #[test]
    fn random_corruption_never_silently_decodes(
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..12),
    ) {
        let clean = small_snapshot_bytes();
        let mut corrupted = clean.clone();
        let mut changed = false;
        for (pos, bit) in flips {
            let pos = pos % corrupted.len();
            corrupted[pos] ^= 1 << bit;
            changed = true;
        }
        // an even number of flips can cancel out; only assert when the
        // bytes actually differ
        if changed && corrupted != clean {
            prop_assert!(matches!(Snapshot::decode(&corrupted), Err(SpaError::Corrupt(_))));
        }
    }

    /// Arbitrary section payloads round-trip byte-identically through
    /// write_atomic + read.
    #[test]
    fn arbitrary_sections_round_trip(
        payloads in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..64),
            0..5,
        ),
        segment in 0u64..1_000_000,
        offset in 0u64..1_000_000_000,
    ) {
        let dir = tmp_dir("roundtrip");
        let position = LogPosition { segment, offset };
        let mut builder = SnapshotBuilder::new(position);
        for (i, payload) in payloads.iter().enumerate() {
            builder.section(i as u32, payload.clone());
        }
        let path = snapshot_path(&dir, position);
        builder.write_atomic(&path).unwrap();
        let snapshot = Snapshot::read(&path).unwrap();
        prop_assert_eq!(snapshot.position(), position);
        prop_assert_eq!(snapshot.sections().len(), payloads.len());
        for (i, payload) in payloads.iter().enumerate() {
            prop_assert_eq!(snapshot.section(i as u32).unwrap(), payload.as_slice());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash between the temp write and the rename: the new snapshot is
/// invisible (a `.snap-tmp` file discovery ignores), and the previous
/// checkpoint still loads. This is the atomicity contract a real kill
/// -9 exercises.
#[test]
fn crash_mid_checkpoint_leaves_the_old_snapshot_loadable() {
    let dir = tmp_dir("atomicity");
    let old_position = LogPosition { segment: 1, offset: 500 };
    let mut old = SnapshotBuilder::new(old_position);
    old.section(1, vec![1, 2, 3]);
    old.write_atomic(snapshot_path(&dir, old_position)).unwrap();

    // simulate the crash: the next checkpoint got as far as writing its
    // temporary file (even a fully valid one) but died before rename
    let new_position = LogPosition { segment: 4, offset: 42 };
    let mut new = SnapshotBuilder::new(new_position);
    new.section(1, vec![9, 9, 9]);
    let final_path = snapshot_path(&dir, new_position);
    new.write_atomic(&final_path).unwrap();
    let committed = std::fs::read(&final_path).unwrap();
    std::fs::remove_file(&final_path).unwrap();
    std::fs::write(final_path.with_extension("snap-tmp"), &committed).unwrap();
    // …and another temp that died mid-write (garbage)
    std::fs::write(dir.join("snapshot-0000000009-000000000000.snap-tmp"), b"torn").unwrap();

    let listed = list_snapshots(&dir).unwrap();
    assert_eq!(listed.len(), 1, "temporaries must be invisible to discovery");
    assert_eq!(listed[0].0, old_position);
    let (snapshot, _) = latest_valid_snapshot(&dir).unwrap().expect("old snapshot survives");
    assert_eq!(snapshot.position(), old_position);
    assert_eq!(snapshot.section(1), Some(&[1u8, 2, 3][..]));

    // re-running the interrupted checkpoint converges: the same
    // write_atomic now completes and becomes the latest
    let mut retry = SnapshotBuilder::new(new_position);
    retry.section(1, vec![9, 9, 9]);
    retry.write_atomic(&final_path).unwrap();
    let (snapshot, _) = latest_valid_snapshot(&dir).unwrap().unwrap();
    assert_eq!(snapshot.position(), new_position);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn *final* rename target (e.g. bit rot after a completed
/// checkpoint) falls back to the previous valid snapshot rather than
/// failing recovery outright.
#[test]
fn bit_rotted_newest_snapshot_falls_back_to_previous() {
    let dir = tmp_dir("fallback");
    for (seg, payload) in [(1u64, 11u8), (2, 22), (3, 33)] {
        let position = LogPosition { segment: seg, offset: 0 };
        let mut b = SnapshotBuilder::new(position);
        b.section(1, vec![payload]);
        b.write_atomic(snapshot_path(&dir, position)).unwrap();
    }
    let newest = snapshot_path(&dir, LogPosition { segment: 3, offset: 0 });
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x04;
    std::fs::write(&newest, &bytes).unwrap();
    let (snapshot, _) = latest_valid_snapshot(&dir).unwrap().unwrap();
    assert_eq!(snapshot.position(), LogPosition { segment: 2, offset: 0 });
    assert_eq!(snapshot.section(1), Some(&[22u8][..]));
    let _ = std::fs::remove_dir_all(&dir);
}
