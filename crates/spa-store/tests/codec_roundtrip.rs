//! Property tests for the frame codec: arbitrary events of every kind
//! round-trip bit-exactly through encode/decode, framed or unframed,
//! and concatenated frames decode back to the same sequence.

use bytes::BytesMut;
use proptest::prelude::*;
use spa_store::codec::{decode_event, decode_frame, encode_event, encode_frame, FrameRead};
use spa_types::{
    ActionId, CampaignId, CourseId, EventKind, LifeLogEvent, QuestionId, Timestamp, UserId, Valence,
};

/// Arbitrary event covering every variant and every optional-field
/// state. Optional ids stay below the `u32::MAX` NONE sentinel the
/// wire format reserves.
fn make_event(kind: u8, user: u32, at: u64, id: u32, aux: u32, value: f64) -> LifeLogEvent {
    let kind = match kind % 12 {
        0 => EventKind::Action { action: ActionId::new(id), course: None },
        1 => EventKind::Action { action: ActionId::new(id), course: Some(CourseId::new(aux)) },
        2 => EventKind::Transaction { course: CourseId::new(id), campaign: None },
        3 => EventKind::Transaction {
            course: CourseId::new(id),
            campaign: Some(CampaignId::new(aux)),
        },
        4 => EventKind::Rating { course: CourseId::new(id), stars: (aux % 6) as u8 },
        5 => EventKind::EitAnswer { question: QuestionId::new(id), answer: Valence::new(value) },
        6 => EventKind::EitSkipped { question: QuestionId::new(id) },
        7 => EventKind::MessageDelivered { campaign: CampaignId::new(id) },
        8 => EventKind::MessageOpened { campaign: CampaignId::new(id) },
        9 => EventKind::ObjectiveImported {
            values: (0..aux % 41).map(|i| value * (i as f64 + 1.0)).collect(),
        },
        10 => EventKind::CampaignIgnored { campaign: CampaignId::new(id) },
        _ => {
            // strictly increasing indices with a stride derived from
            // the raw inputs, all within the declared dimension
            let count = aux % 24;
            let stride = id % 9 + 1;
            let indices: Vec<u32> = (0..count).map(|i| i * stride).collect();
            let dim = indices.last().map_or(1, |&i| i + 1 + id % 5);
            EventKind::OutcomeObserved {
                responded: user.is_multiple_of(2),
                dim,
                values: indices.iter().map(|&i| value * (i as f64 + 0.5)).collect(),
                indices,
            }
        }
    };
    LifeLogEvent::new(UserId::new(user), Timestamp::from_millis(at), kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Payload-level and frame-level round-trips are exact for every
    /// event kind at arbitrary field values (including the extremes of
    /// the id space below the NONE sentinel).
    #[test]
    fn arbitrary_events_round_trip(
        kind in 0u8..12,
        user in 0u32..u32::MAX,
        at in 0u64..u64::MAX,
        id in 0u32..u32::MAX,
        aux in 0u32..u32::MAX,
        value in -1.0f64..1.0,
    ) {
        let event = make_event(kind, user, at, id, aux, value);

        let mut payload = BytesMut::new();
        encode_event(&event, &mut payload);
        prop_assert_eq!(decode_event(payload.freeze()).unwrap(), event.clone());

        let mut frame = BytesMut::new();
        encode_frame(&event, &mut frame);
        match decode_frame(&frame).unwrap() {
            FrameRead::Event(decoded, consumed) => {
                prop_assert_eq!(decoded, event);
                prop_assert_eq!(consumed, frame.len());
            }
            FrameRead::Incomplete => prop_assert!(false, "complete frame reported incomplete"),
        }
    }

    /// A buffer of concatenated frames decodes back to the exact input
    /// sequence — the invariant segment replay is built on.
    #[test]
    fn concatenated_frames_decode_in_sequence(
        raw in proptest::collection::vec(
            (0u8..12, 0u32..1000, 0u64..1_000_000, 0u32..10_000, 0u32..10_000, -1.0f64..1.0),
            1..30,
        ),
    ) {
        let events: Vec<LifeLogEvent> =
            raw.iter().map(|&(k, u, at, id, aux, v)| make_event(k, u, at, id, aux, v)).collect();
        let mut buf = BytesMut::new();
        for event in &events {
            encode_frame(event, &mut buf);
        }
        let bytes = buf.freeze();
        let mut offset = 0usize;
        let mut decoded = Vec::new();
        while offset < bytes.len() {
            match decode_frame(&bytes[offset..]).unwrap() {
                FrameRead::Event(event, consumed) => {
                    decoded.push(event);
                    offset += consumed;
                }
                FrameRead::Incomplete => break,
            }
        }
        prop_assert_eq!(decoded, events);
    }
}
