//! Reproduction of the paper's **Fig 4** loop (experiment E6): the
//! iterative, non-intrusive discovery of emotional attributes through
//! the Gradual EIT plus the reward/punish mechanism.
//!
//! The script measures, round by round:
//! * the **coverage** of the emotional block (answers incorporated —
//!   rising as one question per contact goes out);
//! * the **fidelity** of the discovered sensibilities (correlation with
//!   the latent ground truth the simulator holds);
//! * the **sparsity** of the user×attribute matrix, which the paper
//!   singles out as the obstacle SVMs must cope with.
//!
//! ```text
//! cargo run --release --example incremental_learning
//! ```

use spa::prelude::*;

fn main() -> Result<(), SpaError> {
    let n_users = 3_000;
    let rounds = 30u64;
    let population = Population::generate(PopulationConfig { n_users, ..Default::default() })?;
    let courses = CourseCatalog::generate(40, 8, 11)?;
    let platform = Spa::new(&courses, SpaConfig::default());
    let simulator = spa::synth::eit::AnswerSimulator::default();

    println!("{:>6} {:>10} {:>10} {:>10}", "round", "coverage", "fidelity", "sparsity");
    for round in 0..rounds {
        // one EIT question per user per contact round
        for user in population.users() {
            let question = platform.next_eit_question(user.id);
            let event = simulator.react(
                user,
                question.id,
                question.target,
                round,
                Timestamp::from_millis(round * 86_400_000),
            );
            platform.ingest(&event)?;
        }
        if round % 3 != 2 {
            continue;
        }
        // measure fidelity: correlation of discovered vs latent
        // sensibilities over all observed emotional entries
        let emotional_ids = platform.schema().emotional_ids();
        let mut discovered = Vec::new();
        let mut latent = Vec::new();
        let mut observed_cells = 0usize;
        for user in population.users() {
            if let Some(model) = platform.registry().get(user.id) {
                for (ordinal, &attr) in emotional_ids.iter().enumerate() {
                    if model.relevance(attr) > 0.0 {
                        discovered.push(model.value(attr));
                        latent.push(user.emotional[ordinal]);
                        observed_cells += 1;
                    }
                }
            }
        }
        let total_cells = n_users * 10;
        let coverage = observed_cells as f64 / total_cells as f64;
        let fidelity = spa::linalg::stats::correlation(&discovered, &latent);
        println!(
            "{:>6} {:>9.1}% {:>10.3} {:>9.1}%",
            round + 1,
            coverage * 100.0,
            fidelity,
            (1.0 - coverage) * 100.0
        );
    }

    // --- reward/punish: campaign feedback sharpens one attribute ---------
    println!("\nreward/punish demonstration (Fig 4's update stage):");
    let user = population.users().next().expect("non-empty").id;
    let campaign = CampaignId::new(900);
    platform.register_campaign(campaign, &[EmotionalAttribute::Motivated]);
    let attr = platform.schema().emotional_ids()[EmotionalAttribute::Motivated.ordinal()];
    let before = platform.registry().get(user).map(|m| m.value(attr)).unwrap_or(0.0);
    for i in 0..5 {
        platform.ingest(&LifeLogEvent::new(
            user,
            Timestamp::from_millis(i),
            EventKind::MessageOpened { campaign },
        ))?;
    }
    let after_rewards = platform.registry().get(user).map(|m| m.value(attr)).unwrap_or(0.0);
    for _ in 0..5 {
        platform.punish_ignored(user, campaign);
    }
    let after_punish = platform.registry().get(user).map(|m| m.value(attr)).unwrap_or(0.0);
    println!("  motivated estimate: {before:.3} → {after_rewards:.3} after 5 opens → {after_punish:.3} after 5 ignores");
    assert!(after_rewards > before && after_punish < after_rewards);
    println!("\nFig 4 loop reproduced: coverage grows, fidelity stays high, sparsity falls ✓");
    Ok(())
}
