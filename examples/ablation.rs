//! Experiment E7: the ablation behind the paper's thesis — does
//! embedding the **emotional context** actually improve the
//! recommender's predictive power, compared to the same pipeline
//! restricted to objective + subjective attributes?
//!
//! The script runs the full Fig 6 experiment twice (identical seeds,
//! identical latent population and campaigns) with and without the
//! emotional attribute block, then prints the deltas.
//!
//! ```text
//! cargo run --release --example ablation [n_users]
//! ```

use spa::prelude::*;

fn main() -> Result<(), SpaError> {
    let n_users: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_users must be an integer"))
        .unwrap_or(20_000);

    let base = ExperimentConfig { n_users, ..Default::default() };

    println!("running the full pipeline (objective + subjective + emotional)…");
    let full =
        Experiment::new(ExperimentConfig { mask_emotional: false, ..base.clone() })?.run()?;
    println!("running the masked pipeline (emotional block removed)…\n");
    let masked = Experiment::new(ExperimentConfig { mask_emotional: true, ..base })?.run()?;

    println!("E7 — emotional-context ablation ({n_users} users, 10 campaigns each)");
    println!("---------------------------------------------------------------");
    println!("{:<34}{:>12}{:>12}{:>10}", "metric", "full", "masked", "delta");
    let row = |name: &str, a: f64, b: f64| {
        println!("{:<34}{:>12.3}{:>12.3}{:>+10.3}", name, a, b, a - b);
    };
    row("ROC-AUC of propensity ranking", full.auc, masked.auc);
    row("captured at 40% effort", full.captured_at_40, masked.captured_at_40);
    row("mean predictive score", full.mean_predictive_score, masked.mean_predictive_score);
    row(
        "redemption improvement vs generic",
        full.redemption_improvement,
        masked.redemption_improvement,
    );

    assert!(
        full.auc > masked.auc,
        "the paper's thesis requires the emotional context to add ranking skill"
    );
    println!(
        "\nemotional context adds {:+.3} AUC and {:+.1} points of capture at 40% effort ✓",
        full.auc - masked.auc,
        (full.captured_at_40 - masked.captured_at_40) * 100.0
    );
    Ok(())
}
