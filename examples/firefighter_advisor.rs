//! The paper's future work (§7), reproduced: the wearIT@work scenario
//! where SPA maps firefighters' **physiological signals to emotional
//! context** so "the team commander … can better assess the operational
//! fitness of his colleague".
//!
//! Wearable signal windows are simulated per firefighter and latent
//! stress state, classified back into emotional evidence, fed into the
//! same Smart User Models the e-commerce deployment used, and summarized
//! for the commander as a fitness board plus each firefighter's Human
//! Values Scale.
//!
//! ```text
//! cargo run --example firefighter_advisor
//! ```

use spa::core::values::HumanValuesScale;
use spa::core::{SumConfig, SumRegistry};
use spa::prelude::*;
use spa::synth::physio::{self, StressState};

fn main() -> spa::types::Result<()> {
    let schema = AttributeSchema::emagister();
    let registry = SumRegistry::new(schema.len(), SumConfig::default());

    // a brigade of six, each currently in a latent stress state the
    // commander cannot observe directly
    let brigade = [
        ("Moreau", StressState::Focused),
        ("Dubois", StressState::Calm),
        ("Lefevre", StressState::Overloaded),
        ("Garnier", StressState::Focused),
        ("Rousseau", StressState::Overloaded),
        ("Petit", StressState::Calm),
    ];

    println!(
        "{:<10} {:>6} {:>6} {:>6}   {:<12} {:>8}  advice",
        "member", "HR", "EDA", "RR", "state", "fitness"
    );
    for (idx, (name, latent_state)) in brigade.iter().enumerate() {
        let user = UserId::new(idx as u32);
        // ten signal windows stream in from the wearable
        let mut last_reading = None;
        for window in 0..10u64 {
            let sample = physio::sample(*latent_state, idx as u64 * 1000 + window);
            let reading = physio::classify(&sample)?;
            // physiological evidence enters the SUM exactly like
            // Gradual-EIT answers: (attribute, valence) pairs
            registry.with_model(user, |model, config| -> spa::types::Result<()> {
                for &(emo, valence) in &reading.emotions {
                    let attr = schema.emotional_ids()[emo.ordinal()];
                    model.apply_eit_answer(attr, emo.ordinal(), valence, config)?;
                }
                Ok(())
            })?;
            last_reading = Some((sample, reading));
        }
        let (sample, reading) = last_reading.expect("ten windows streamed");
        let advice = match reading.state {
            StressState::Overloaded => "ROTATE OUT — acute stress",
            StressState::Focused => "engaged — good to continue",
            StressState::Calm => "in reserve — available",
        };
        println!(
            "{:<10} {:>6.0} {:>6.1} {:>6.0}   {:<12} {:>8}  {}",
            name,
            sample.heart_rate,
            sample.skin_conductance,
            sample.respiration,
            format!("{:?}", reading.state),
            reading.fitness.to_string(),
            advice
        );
        assert_eq!(reading.state, *latent_state, "ten windows must pin down the latent state");
    }

    // the commander can also inspect each member's emotional profile —
    // the same Human Values Scale the e-commerce deployment maintained
    println!("\nemotional profile of the overloaded member (Lefevre):");
    let scale = HumanValuesScale::from_registry(&registry, &schema, UserId::new(2))?;
    for rung in scale.ranks().iter().take(3) {
        println!("  #{} {:<12} strength {:.2}", rung.rank, rung.value.name(), rung.strength);
    }
    assert_eq!(scale.top().expect("signal present").value, EmotionalAttribute::Frightened);
    println!("\nwearIT@work advisory loop reproduced: signals → emotions → SUM → advice ✓");
    Ok(())
}
