//! Reproduction of the paper's **§5.1 data description** (experiment
//! E5): generate the synthetic emagister-like dataset and print the same
//! inventory the paper reports, including the WebLog volume estimate
//! ("WebLogs are close to 50 Gb/month" at 3.16M users).
//!
//! ```text
//! cargo run --release --example dataset_stats [n_users]
//! ```

use spa::prelude::*;
use spa::synth::weblog::{self, WeblogConfig};

fn main() -> Result<(), SpaError> {
    let n_users: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_users must be an integer"))
        .unwrap_or(100_000);

    let population = Population::generate(PopulationConfig { n_users, ..Default::default() })?;
    let actions = ActionCatalog::emagister();
    let courses = CourseCatalog::generate(400, 24, 5)?;
    let schema = population.schema();

    let mut events_sample = 0u64;
    let stats = weblog::generate_weblogs(
        &population,
        &actions,
        &courses,
        &WeblogConfig::default(),
        |_| events_sample += 1,
    )?;

    let paper_users = 3_162_069.0;
    let scale = paper_users / n_users as f64;
    let gb = |bytes: f64| bytes / (1024.0 * 1024.0 * 1024.0);

    println!("Synthetic dataset inventory (paper §5.1 in parentheses)");
    println!("--------------------------------------------------------");
    println!("registered users          : {:>12} (3,162,069)", n_users);
    println!("attributes                : {:>12} (75)", schema.len());
    println!(
        "  objective / subjective / emotional : {} / {} / {}  (40/25/10 split is ours; the paper only fixes 75 total and 10 emotional)",
        schema.count_of(AttributeKind::Objective),
        schema.count_of(AttributeKind::Subjective),
        schema.count_of(AttributeKind::Emotional),
    );
    println!("catalogued actions        : {:>12} (984)", actions.len());
    println!(
        "emotional attributes      : {:>12} ({})",
        10,
        EMOTIONAL_ATTRIBUTES.map(|e| e.name()).join(", ")
    );
    println!("weblog events (30 days)   : {:>12}", stats.events);
    println!("  of which transactions   : {:>12}", stats.transactions);
    println!("  active users            : {:>12}", stats.active_users);
    println!(
        "weblog volume             : {:>9.2} GB/month at this scale",
        gb(stats.estimated_bytes_per_month as f64)
    );
    println!(
        "  extrapolated to 3.16M users : {:>6.1} GB/month (paper: ~50 GB/month)",
        gb(stats.estimated_bytes_per_month as f64 * scale)
    );
    assert_eq!(events_sample, stats.events);
    Ok(())
}
