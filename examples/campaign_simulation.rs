//! Reproduction of the paper's **Fig 6**: ten push/newsletter campaigns
//! over a synthetic emagister-like population.
//!
//! * Fig 6(a) — the cumulative redemption curve: with 40% of the
//!   commercial action SPA should capture far more than 40% of the
//!   useful impacts (the paper reads >76% off its curve);
//! * Fig 6(b) — per-campaign predictive scores, averaging ≈21%
//!   (282,938 useful impacts over 1,340,432 targets at paper scale).
//!
//! ```text
//! cargo run --release --example campaign_simulation [n_users]
//! ```
//!
//! `n_users` defaults to 50,000; the paper's population was 3,162,069 —
//! pass a larger count if you have the minutes to spare. Results land on
//! stdout and in `target/fig6a.csv` / `target/fig6b.csv`.

use spa::campaign::report;
use spa::prelude::*;

fn main() -> Result<(), SpaError> {
    let n_users: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("n_users must be an integer"))
        .unwrap_or(50_000);

    println!("generating a {n_users}-user population (paper scale: 3,162,069)…");
    let config = ExperimentConfig { n_users, ..Default::default() };
    let experiment = Experiment::new(config)?;
    println!("running history build-up, 4 training campaigns and 10 evaluation campaigns…\n");
    let result = experiment.run()?;

    // Fig 6(a)
    println!("{}", report::render_fig6a(&result.gains, 10));
    // Fig 6(b)
    println!("{}", report::render_fig6b(&result));
    // headline claims of §5.4
    println!("{}", report::render_summary(&result));

    // scale the impact counts to the paper's audience for comparison
    let paper_targets = 1_340_432.0 * 10.0;
    println!(
        "scaled to the paper's audience (10 × 1,340,432 targets): {:.0} useful impacts\n\
         (the paper reports 282,938 per-campaign-average ≙ 21% of 1,340,432)",
        result.spa_rate * paper_targets
    );

    spa::store::csv::write_csv("target/fig6a.csv", &report::gains_csv(&result.gains))?;
    spa::store::csv::write_csv("target/fig6b.csv", &report::campaigns_csv(&result))?;
    println!("\nwrote target/fig6a.csv and target/fig6b.csv");
    Ok(())
}
