//! Reproduction of the paper's **Table 1**: the Four-Branch Model of
//! Emotional Intelligence (MSCEIT V2.0) that structures the Gradual EIT,
//! plus the question bank built on it.
//!
//! ```text
//! cargo run --example table1_four_branch
//! ```

use spa::core::QuestionBank;
use spa::prelude::*;
use spa::types::four_branch;

fn main() {
    // the taxonomy itself
    print!("{}", four_branch::render_table1());

    // the Gradual-EIT question bank derived from it
    let bank = QuestionBank::standard();
    println!("\nGradual-EIT question bank: {} questions", bank.len());
    for branch in BRANCHES {
        let questions = bank.for_branch(branch);
        println!("\n{branch} — {} questions", questions.len());
        if let Some(first) = questions.first() {
            println!("  e.g. [{}] {}", first.target, first.text);
        }
    }
    for target in EMOTIONAL_ATTRIBUTES {
        assert_eq!(bank.for_target(target).len(), BRANCHES.len());
    }
    println!("\nevery emotional attribute is probed through every branch ✓");
}
