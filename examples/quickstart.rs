//! Quickstart: stand up the SPA platform on a tiny synthetic world,
//! acquire a user's emotional context through the Gradual EIT, and watch
//! the message individualization change as the model learns.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spa::prelude::*;

fn main() -> Result<(), SpaError> {
    // --- a tiny synthetic world -----------------------------------------
    let population = Population::generate(PopulationConfig { n_users: 100, ..Default::default() })?;
    let courses = CourseCatalog::generate(12, 4, 7)?;
    let platform = Spa::new(&courses, SpaConfig::default());

    // one user, with latent ground truth we can peek at (the platform
    // itself never sees this)
    let user = UserId::new(42);
    let latent = population.user(user).expect("user 42 exists");
    println!("latent dominant emotion of {user}: {}\n", latent.dominant_emotion());

    // --- before any learning: the standard message ------------------------
    let course = courses.course(CourseId::new(0)).expect("course 0 exists").clone();
    println!("course appeal attributes: {:?}", course.appeal);
    let before = platform.assign_message(user, &course.appeal)?;
    println!("before learning  [{:?}] {}\n", before.case, before.text);

    // --- the Gradual EIT: one question per contact -------------------------
    let simulator = spa::synth::eit::AnswerSimulator::default();
    for round in 0..25 {
        let question = platform.next_eit_question(user);
        let event = simulator.react(
            latent,
            question.id,
            question.target,
            round,
            Timestamp::from_millis(round * 3_600_000),
        );
        platform.ingest(&event)?;
    }
    let stats = platform.stats();
    println!(
        "after 25 contacts: {} answers, {} skips (the sparsity problem)",
        stats.eit_answers, stats.eit_skips
    );

    // --- what the Smart User Model learned ---------------------------------
    let model = platform.registry().get(user).expect("model materialized");
    println!("\ndiscovered emotional profile (estimate vs latent):");
    for (ordinal, emo) in EMOTIONAL_ATTRIBUTES.into_iter().enumerate() {
        let attr = platform.schema().emotional_ids()[ordinal];
        if model.relevance(attr) > 0.0 {
            println!(
                "  {:<14} estimate {:.2}   latent {:.2}",
                emo.name(),
                model.value(attr),
                latent.emotional[ordinal]
            );
        }
    }

    // --- the individualized message now -------------------------------------
    let after = platform.assign_message(user, &course.appeal)?;
    println!("\nafter learning   [{:?}] {}", after.case, after.text);

    // --- per-branch emotional-intelligence scores (Table 1 structure) --------
    let scores = platform.eit().branch_scores(platform.registry(), platform.schema(), user);
    println!("\nfour-branch EI scores:");
    for (branch, score) in BRANCHES.into_iter().zip(scores.scores) {
        match score {
            Some(s) => println!("  {branch}: {s:.2}"),
            None => println!("  {branch}: (not yet assessed)"),
        }
    }
    Ok(())
}
