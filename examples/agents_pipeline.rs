//! The Fig 3 agent architecture, live: raw LifeLog events enter the
//! LifeLogs Pre-processor Agent, model changes flow to the Attributes
//! Manager Agent, and the Messaging Agent composes individualized
//! messages that the Smart Component collects — all over the
//! deterministic message-passing runtime.
//!
//! ```text
//! cargo run --example agents_pipeline
//! ```

use spa::core::agents::{
    names, AttributesManagerAgent, MessagingActor, PreprocessorAgent, SmartComponentAgent,
    SpaMessage,
};
use spa::core::attributes::AttributesManager;
use spa::core::preprocessor::LifeLogPreprocessor;
use spa::core::{EitEngine, MessageCatalog, MessagePolicy, SumConfig, SumRegistry};
use spa::prelude::*;
use spa_agents::StepRuntime;
use std::sync::Arc;

fn main() -> Result<(), SpaError> {
    // shared platform state (the blackboard of Fig 3)
    let schema = AttributeSchema::emagister();
    let registry = Arc::new(SumRegistry::new(schema.len(), SumConfig::default()));
    let courses = CourseCatalog::generate(20, 4, 2)?;
    let preprocessor = Arc::new(LifeLogPreprocessor::new(schema.clone(), &courses));
    let eit = Arc::new(EitEngine::standard());
    let manager = Arc::new(AttributesManager::new(schema));
    let messaging = Arc::new(spa::core::messaging::MessagingAgent::new(
        MessageCatalog::standard_catalog("the Data Engineering course"),
        MessagePolicy::MaxSensibility,
    ));
    let collector = SmartComponentAgent::default();
    let composed = collector.composed.clone();

    // wire the four agents
    let mut runtime = StepRuntime::new();
    runtime.register(
        names::PREPROCESSOR,
        Box::new(PreprocessorAgent::new(registry.clone(), preprocessor, eit.clone())),
    )?;
    runtime.register(
        names::ATTRIBUTES_MANAGER,
        Box::new(AttributesManagerAgent::new(registry.clone(), manager.clone())),
    )?;
    runtime.register(
        names::MESSAGING,
        Box::new(MessagingActor::new(registry.clone(), manager, messaging)),
    )?;
    runtime.register(names::SMART_COMPONENT, Box::new(collector))?;

    // simulate three users answering EIT questions with different
    // emotional signatures
    let population = Population::generate(PopulationConfig { n_users: 3, ..Default::default() })?;
    let simulator = spa::synth::eit::AnswerSimulator::default();
    for round in 0..20u64 {
        for user in population.users() {
            let question = eit.next_question(&registry, user.id);
            let event = simulator.react(
                user,
                question.id,
                question.target,
                round,
                Timestamp::from_millis(round),
            );
            runtime.post(names::PREPROCESSOR, SpaMessage::Raw(event));
        }
    }
    // then ask for one message per user
    for user in population.users() {
        runtime.post(
            names::MESSAGING,
            SpaMessage::Compose {
                user: user.id,
                course: CourseId::new(0),
                appeal: vec![
                    EmotionalAttribute::Enthusiastic,
                    EmotionalAttribute::Hopeful,
                    EmotionalAttribute::Shy,
                ],
            },
        );
    }

    let delivered = runtime.run_to_quiescence(100_000)?;
    println!("runtime delivered {delivered} messages between agents\n");
    for (user, course, message) in composed.lock().iter() {
        let latent = population.user(*user).expect("generated above");
        println!(
            "{user} (latent dominant: {:<12}) → {course} [{:?}] {}",
            latent.dominant_emotion().name(),
            message.case,
            message.text
        );
    }
    assert_eq!(composed.lock().len(), 3);
    assert!(runtime.dead_letters().is_empty());
    println!("\nFig 3 pipeline ran to quiescence with no dead letters ✓");
    Ok(())
}
