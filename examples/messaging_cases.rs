//! Reproduction of the paper's **Fig 5**: the three kinds of
//! individualized message the Messaging Agent sends, using the exact
//! attribute sets printed in the figure.
//!
//! * Fig 5(a) — one dominant sensibility (*enthusiastic*) → case 3.b;
//! * Fig 5(b) — four sensibilities ordered by product priority
//!   (*lively, stimulated, shy, frightened*) → case 3.c.i;
//! * Fig 5(c) — two sensibilities (*motivated, hopeful*), message of the
//!   most impacting one (*hopeful*) → case 3.c.ii.
//!
//! ```text
//! cargo run --example messaging_cases
//! ```

use spa::core::messaging::MessagingAgent;
use spa::prelude::*;
use EmotionalAttribute::*;

fn show(label: &str, message: &AssignedMessage) {
    println!("{label}");
    println!("  case      : {:?}", message.case);
    println!("  matches   : {:?}", message.matches);
    println!(
        "  attribute : {}",
        message.attribute.map_or("(standard)".to_string(), |a| a.to_string())
    );
    println!("  message   : {}\n", message.text);
}

fn main() -> Result<(), SpaError> {
    let catalog = MessageCatalog::standard_catalog("the Advanced Marketing course");

    // Fig 5(a): the user has very much sensibility for `enthusiastic`
    // (paper case 3.b — exactly one product attribute matches).
    let agent = MessagingAgent::new(catalog.clone(), MessagePolicy::MaxSensibility);
    let fig5a = agent.assign(&[Enthusiastic, Impatient], &[(Enthusiastic, 0.95)])?;
    assert_eq!(fig5a.case, AssignmentCase::SingleAttribute);
    show("Fig 5(a) — single impacting attribute (case 3.b)", &fig5a);

    // Fig 5(b): four sensibilities, ordered by priority:
    // lively > stimulated > shy > frightened (paper case 3.c.i).
    let agent = MessagingAgent::new(catalog.clone(), MessagePolicy::Priority);
    let fig5b = agent.assign(
        &[Lively, Stimulated, Shy, Frightened],
        &[(Frightened, 0.99), (Shy, 0.92), (Stimulated, 0.85), (Lively, 0.80)],
    )?;
    assert_eq!(fig5b.case, AssignmentCase::PriorityOrder);
    assert_eq!(fig5b.matches, vec![Lively, Stimulated, Shy, Frightened]);
    show("Fig 5(b) — several attributes, priority order (case 3.c.i)", &fig5b);

    // Fig 5(c): motivated and hopeful; the Messaging Agent assigns the
    // message of `hopeful`, which impacts the user's sensibility most
    // (paper case 3.c.ii).
    let agent = MessagingAgent::new(catalog.clone(), MessagePolicy::MaxSensibility);
    let fig5c = agent.assign(&[Motivated, Hopeful], &[(Hopeful, 0.92), (Motivated, 0.74)])?;
    assert_eq!(fig5c.case, AssignmentCase::MaxSensibility);
    assert_eq!(fig5c.attribute, Some(Hopeful));
    show("Fig 5(c) — several attributes, max sensibility (case 3.c.ii)", &fig5c);

    // And the fallback the paper describes as case 3.a.
    let fig5_std = agent.assign(&[Lively], &[(Apathetic, 0.9)])?;
    assert_eq!(fig5_std.case, AssignmentCase::Standard);
    show("case 3.a — no matching sensibility, standard message", &fig5_std);

    println!("all four §5.3 assignment cases reproduced ✓");
    Ok(())
}
