//! Sharded online serving with durable ingest and crash recovery.
//!
//! Runs the full lifecycle the sharded platform is built for:
//!
//! 1. bring up a [`ShardedSpa`] with a per-shard write-ahead log;
//! 2. ingest an event stream (EIT contact loops + web usage) for a
//!    population of users, fanned out across shards;
//! 3. train the global selection function and rank the population;
//! 4. "crash" — drop the whole in-memory platform, then tear one
//!    shard's log mid-frame, as a real crash during an append would;
//! 5. recover from the logs and show the rankings match on every user
//!    whose events survived.
//!
//! ```bash
//! cargo run --release --example sharded_serving [n_users] [shards]
//! ```

use spa::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_users: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let root = std::env::temp_dir().join(format!("spa-sharded-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let campaigns = [(CampaignId::new(1), vec![EmotionalAttribute::Hopeful])];

    println!("=== sharded serving: {n_users} users across {shards} shards ===\n");

    // 1. durable platform
    let mut platform =
        ShardedSpa::with_log(&courses, SpaConfig::default(), shards, &root, LogConfig::default())
            .unwrap();
    platform.register_campaign(campaigns[0].0, &campaigns[0].1);

    // 2. ingest: six EIT contact rounds per user plus some web usage
    let users: Vec<UserId> = (0..n_users).map(UserId::new).collect();
    let started = std::time::Instant::now();
    let mut total_events = 0usize;
    for round in 0..6u64 {
        let mut batch = Vec::with_capacity(users.len() * 2);
        for &user in &users {
            let question = platform.next_eit_question(user).id;
            let spread = (user.raw() as f64 / n_users as f64) * 2.0 - 1.0;
            batch.push(LifeLogEvent::new(
                user,
                Timestamp::from_millis(round * n_users as u64 + user.raw() as u64),
                EventKind::EitAnswer { question, answer: Valence::new(spread * 0.8) },
            ));
            if user.raw() % 3 == 0 {
                batch.push(LifeLogEvent::new(
                    user,
                    Timestamp::from_millis(round * n_users as u64 + user.raw() as u64),
                    EventKind::Action {
                        action: ActionId::new(user.raw() % 984),
                        course: Some(CourseId::new(user.raw() % 25)),
                    },
                ));
            }
        }
        total_events += platform.ingest_batch(batch.iter()).unwrap();
    }
    platform.flush().unwrap();
    let log_stats = platform.log().unwrap().stats().unwrap();
    println!(
        "ingested {total_events} events in {:.1?} -> {} segment files, {:.1} KiB write-ahead log",
        started.elapsed(),
        log_stats.segments,
        log_stats.bytes as f64 / 1024.0
    );
    let stats = platform.stats();
    println!(
        "aggregate stats: {} EIT answers, {} actions across {} shards\n",
        stats.eit_answers,
        stats.actions,
        platform.shard_count()
    );

    // 3. train the global selection function and rank everyone
    let mut data = Dataset::new(75);
    for &user in &users {
        let row = platform.advice_row(user).unwrap();
        data.push(&row, if row.get(65) > 0.3 { 1.0 } else { -1.0 }).unwrap();
    }
    platform.train_selection(&data).unwrap();
    let ranking_before = platform.rank(&users).unwrap();
    println!("top of the pre-crash ranking:");
    for (user, score) in ranking_before.iter().take(5) {
        println!("  {user}  score {score:+.4}  (shard {})", platform.shard_of(*user));
    }

    // 4. crash: drop the platform, then tear one shard's tail segment
    drop(platform);
    let victim = root.join("shard-0000");
    let mut segments: Vec<_> =
        std::fs::read_dir(&victim).unwrap().map(|entry| entry.unwrap().path()).collect();
    segments.sort();
    let tail = segments.last().unwrap();
    let len = std::fs::metadata(tail).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .unwrap()
        .set_len(len.saturating_sub(5))
        .unwrap();
    println!("\n*** crash! memory gone; {} torn 5 bytes mid-frame ***\n", tail.display());

    // 5. recover and re-serve
    let recover_started = std::time::Instant::now();
    let (mut recovered, report) = ShardedSpa::recover(
        &courses,
        SpaConfig::default(),
        &campaigns,
        &root,
        LogConfig::default(),
    )
    .unwrap();
    println!(
        "recovered {} events in {:.1?} ({} shard(s) had a torn tail; the partial frame was \
         dropped and truncated)",
        report.total_events(),
        recover_started.elapsed(),
        report.torn_shards()
    );
    recovered.train_selection(&data).unwrap();
    let ranking_after = recovered.rank(&users).unwrap();
    let matching = ranking_before
        .iter()
        .zip(ranking_after.iter())
        .filter(|((u_a, s_a), (u_b, s_b))| u_a == u_b && s_a.to_bits() == s_b.to_bits())
        .count();
    println!(
        "post-recovery ranking agrees on {matching}/{} positions \
         (divergence only at the torn-off tail event)",
        ranking_after.len()
    );
    println!("\ntop of the post-recovery ranking:");
    for (user, score) in ranking_after.iter().take(5) {
        println!("  {user}  score {score:+.4}  (shard {})", recovered.shard_of(*user));
    }

    let _ = std::fs::remove_dir_all(&root);
}
