//! Sharded online serving with durable ingest, checkpoints and
//! bounded-time crash recovery.
//!
//! Runs the full durability lifecycle the sharded platform is built
//! for (WAL → checkpoint → compaction → crash → snapshot + tail
//! recovery):
//!
//! 1. bring up a [`ShardedSpa`] with a per-shard write-ahead log;
//! 2. ingest an event stream (EIT contact loops + web usage) for a
//!    population of users, fanned out across shards;
//! 3. train the global selection function, **checkpoint** every shard
//!    (snapshot at a recorded log position, selection weights
//!    included) and **compact** the covered segments away;
//! 4. keep serving: ingest a post-checkpoint tail, rank the population;
//! 5. "crash" — drop the whole in-memory platform, then tear one
//!    shard's log mid-frame, as a real crash during an append would;
//! 6. recover: each shard loads its snapshot and replays only the tail
//!    behind it (the compacted history is never read again — it no
//!    longer exists), the selection function comes back bit-identical
//!    without retraining, and the rankings match on every user whose
//!    tail events survived.
//!
//! ```bash
//! cargo run --release --example sharded_serving [n_users] [shards]
//! ```

use spa::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_users: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let courses = CourseCatalog::generate(25, 5, 3).unwrap();
    let root = std::env::temp_dir().join(format!("spa-sharded-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let campaigns = [(CampaignId::new(1), vec![EmotionalAttribute::Hopeful])];

    println!("=== sharded serving: {n_users} users across {shards} shards ===\n");

    // 1. durable platform (small segments so the history rolls several
    // files per shard and compaction has something to reclaim)
    let log_config = LogConfig { segment_bytes: 16 * 1024, fsync: false };
    let platform =
        ShardedSpa::with_log(&courses, SpaConfig::default(), shards, &root, log_config.clone())
            .unwrap();
    platform.register_campaign(campaigns[0].0, &campaigns[0].1);

    // 2. ingest: six EIT contact rounds per user plus some web usage
    let users: Vec<UserId> = (0..n_users).map(UserId::new).collect();
    let started = std::time::Instant::now();
    let mut total_events = 0usize;
    for round in 0..6u64 {
        let mut batch = Vec::with_capacity(users.len() * 2);
        for &user in &users {
            let question = platform.next_eit_question(user).id;
            let spread = (user.raw() as f64 / n_users as f64) * 2.0 - 1.0;
            batch.push(LifeLogEvent::new(
                user,
                Timestamp::from_millis(round * n_users as u64 + user.raw() as u64),
                EventKind::EitAnswer { question, answer: Valence::new(spread * 0.8) },
            ));
            if user.raw() % 3 == 0 {
                batch.push(LifeLogEvent::new(
                    user,
                    Timestamp::from_millis(round * n_users as u64 + user.raw() as u64),
                    EventKind::Action {
                        action: ActionId::new(user.raw() % 984),
                        course: Some(CourseId::new(user.raw() % 25)),
                    },
                ));
            }
        }
        total_events += platform.ingest_batch(batch.iter()).unwrap();
    }
    platform.flush().unwrap();
    let log_stats = platform.log().unwrap().stats().unwrap();
    println!(
        "ingested {total_events} events in {:.1?} -> {} segment files, {:.1} KiB write-ahead log",
        started.elapsed(),
        log_stats.segments,
        log_stats.bytes as f64 / 1024.0
    );
    let stats = platform.stats();
    println!(
        "aggregate stats: {} EIT answers, {} actions across {} shards\n",
        stats.eit_answers,
        stats.actions,
        platform.shard_count()
    );

    // 3. train the global selection function, then checkpoint: every
    // shard snapshots its state at a recorded log position (selection
    // weights included) and the covered segments are compacted away —
    // from here on, recovery never replays the pre-checkpoint history
    let mut data = Dataset::new(75);
    for &user in &users {
        let row = platform.advice_row(user).unwrap();
        data.push(&row, if row.get(65) > 0.3 { 1.0 } else { -1.0 }).unwrap();
    }
    platform.train_selection(&data).unwrap();
    let ckpt_started = std::time::Instant::now();
    let checkpoint = platform.checkpoint().unwrap();
    let compaction = platform.compact().unwrap();
    println!(
        "checkpointed {} shards in {:.1?}: {:.1} KiB of snapshots; compaction reclaimed \
         {:.1} KiB across {} segment files",
        checkpoint.positions.len(),
        ckpt_started.elapsed(),
        checkpoint.snapshot_bytes as f64 / 1024.0,
        compaction.bytes_reclaimed as f64 / 1024.0,
        compaction.segments_deleted,
    );

    // 4. keep serving past the checkpoint: this tail is all that will
    // ever be replayed again
    let mut tail_events = 0usize;
    let mut batch = Vec::with_capacity(users.len());
    for &user in users.iter().filter(|u| u.raw() % 4 == 0) {
        let question = platform.next_eit_question(user).id;
        batch.push(LifeLogEvent::new(
            user,
            Timestamp::from_millis(7 * n_users as u64 + user.raw() as u64),
            EventKind::EitAnswer { question, answer: Valence::new(0.4) },
        ));
    }
    tail_events += platform.ingest_batch(batch.iter()).unwrap();
    platform.flush().unwrap();
    println!("ingested a {tail_events}-event post-checkpoint tail\n");
    let ranking_before = platform.rank(&users).unwrap();
    println!("top of the pre-crash ranking:");
    for (user, score) in ranking_before.iter().take(5) {
        println!("  {user}  score {score:+.4}  (shard {})", platform.shard_of(*user));
    }

    // 5. crash: drop the platform, then tear one shard's tail segment
    drop(platform);
    let victim = root.join("shard-0000");
    let mut segments: Vec<_> = std::fs::read_dir(&victim)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    let tail = segments.last().unwrap();
    let len = std::fs::metadata(tail).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .unwrap()
        .set_len(len.saturating_sub(5))
        .unwrap();
    println!("\n*** crash! memory gone; {} torn 5 bytes mid-frame ***\n", tail.display());

    // 6. recover: snapshot + tail, not history. Each shard loads its
    // registered snapshot and replays only the events behind it; the
    // selection function comes back from the checkpointed weights —
    // no retraining step before serving resumes.
    let recover_started = std::time::Instant::now();
    let (recovered, report) =
        ShardedSpa::recover(&courses, SpaConfig::default(), &campaigns, &root, log_config).unwrap();
    // the report's Display is the operator-facing summary: shards from
    // snapshot vs replay, replay volume, and every healed anomaly
    println!("recovered in {:.1?}:\n{report}", recover_started.elapsed());
    assert!(report.selection_restored, "checkpointed weights must come back");
    let ranking_after = recovered.rank(&users).unwrap();
    let matching = ranking_before
        .iter()
        .zip(ranking_after.iter())
        .filter(|((u_a, s_a), (u_b, s_b))| u_a == u_b && s_a.to_bits() == s_b.to_bits())
        .count();
    println!(
        "post-recovery ranking agrees on {matching}/{} positions \
         (divergence only at the torn-off tail event)",
        ranking_after.len()
    );
    println!("\ntop of the post-recovery ranking:");
    for (user, score) in ranking_after.iter().take(5) {
        println!("  {user}  score {score:+.4}  (shard {})", recovered.shard_of(*user));
    }

    let _ = std::fs::remove_dir_all(&root);
}
