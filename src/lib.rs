//! # spa — Smart Prediction Assistant
//!
//! A from-scratch Rust reproduction of **González, de la Rosa, Montaner,
//! Delfin — “Embedding Emotional Context in Recommender Systems” (ICDE
//! 2007)**: a customer-intelligence platform that embeds users'
//! emotional context into recommendation through Smart User Models, a
//! Gradual Emotional Intelligence Test, reward/punish incremental
//! learning, SVM-based propensity ranking and individualized persuasive
//! messaging.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`types`] | ids, attributes, valences, LifeLog events, Four-Branch model |
//! | [`linalg`] | dense/sparse vectors, CSR matrices, similarities, stats |
//! | [`ml`] | linear SVM (Pegasos), logistic regression, naive Bayes, kNN CF, metrics, CV |
//! | [`store`] | append-only event log, profile store, sensibility index, CSV |
//! | [`agents`] | message-passing agent runtimes |
//! | [`synth`] | synthetic population / WebLogs / EIT answers / response model |
//! | [`core`] | the SPA platform itself (SUM, EIT, messaging, recommend/select) |
//! | [`campaign`] | push & newsletter campaign engine + the Fig 6 experiment |
//! | [`server`] | TCP serving layer: binary wire protocol over the `SpaApi` facade |
//!
//! ## Quickstart
//!
//! ```
//! use spa::prelude::*;
//!
//! // a tiny synthetic world
//! let courses = CourseCatalog::generate(10, 4, 7).unwrap();
//! let platform = Spa::new(&courses, SpaConfig::default());
//!
//! // a user answers one Gradual-EIT question per contact
//! let user = UserId::new(0);
//! let question = platform.next_eit_question(user);
//! platform
//!     .ingest(&LifeLogEvent::new(
//!         user,
//!         Timestamp::from_millis(0),
//!         EventKind::EitAnswer { question: question.id, answer: Valence::new(0.9) },
//!     ))
//!     .unwrap();
//!
//! // …and receives an individualized sales message
//! let message = platform
//!     .assign_message(user, &[EmotionalAttribute::Enthusiastic])
//!     .unwrap();
//! println!("{}", message.text);
//! ```
//!
//! Run `cargo run --release --example campaign_simulation` to regenerate
//! the paper's Fig 6, and see `EXPERIMENTS.md` for the full experiment
//! index.

#![forbid(unsafe_code)]

pub use spa_agents as agents;
pub use spa_campaign as campaign;
pub use spa_core as core;
pub use spa_linalg as linalg;
pub use spa_ml as ml;
pub use spa_server as server;
pub use spa_store as store;
pub use spa_synth as synth;
pub use spa_types as types;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use spa_campaign::{
        CampaignOutcome, CampaignRunner, CampaignSpec, Channel, Experiment, ExperimentConfig,
        ExperimentResult,
    };
    pub use spa_core::platform::{Spa, SpaConfig};
    pub use spa_core::{
        ApiRequest, ApiResponse, AssignedMessage, AssignmentCase, CheckpointReport,
        CompactionReport, EitEngine, MessageCatalog, MessagePolicy, RecoverStatus, RecoveryReport,
        SelectionFunction, ShardedSpa, SmartUserModel, SpaApi, SumConfig, SumRegistry,
    };
    pub use spa_linalg::{CsrMatrix, SparseVec};
    pub use spa_ml::{
        BernoulliNb, Classifier, Dataset, LinearSvm, LogisticRegression, OnlineLearner,
    };
    pub use spa_store::log::LogConfig;
    pub use spa_store::{
        EventLog, LogPosition, ProfileStore, SensibilityIndex, ShardedEventLog, Snapshot,
        SnapshotBuilder,
    };
    pub use spa_synth::{
        ActionCatalog, ActionKind, Course, CourseCatalog, LatentUser, Population, PopulationConfig,
        ResponseConfig, ResponseModel,
    };
    pub use spa_types::{
        ActionId, AttributeId, AttributeKind, AttributeSchema, Branch, CampaignId, CourseId,
        EmotionalAttribute, EventKind, LifeLogEvent, QuestionId, ShardId, SpaError, Timestamp,
        UserId, Valence, BRANCHES, EMOTIONAL_ATTRIBUTES,
    };
}
